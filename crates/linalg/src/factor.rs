//! Exact solves with (singular) graph Laplacians.

use crate::{CsrMatrix, DenseMatrix, LinalgError};

/// Direct solver for Laplacian systems `L x = b`, correct on *singular*
/// Laplacians: one vertex per connected component is grounded (pinned to
/// zero), the strictly positive definite reduced system is factored by
/// dense Cholesky once, and [`GroundedCholesky::solve`] then implements the
/// pseudo-inverse action `x = L† b` for any right-hand side (the component
/// of `b` outside `range(L)` is projected away, and the returned solution
/// has zero mean on every component — the canonical pseudo-inverse
/// representative).
///
/// This is the "solve involving `L_H`" of Corollary 2.3: the sparsifier is
/// globally known, so every node runs this factorization internally at zero
/// round cost.
#[derive(Debug, Clone)]
pub struct GroundedCholesky {
    n: usize,
    /// Component id per vertex.
    component: Vec<usize>,
    /// Vertices per component.
    comp_size: Vec<usize>,
    /// Map reduced index → vertex.
    reduced_vertices: Vec<usize>,
    /// Lower-triangular Cholesky factor of the reduced matrix.
    lower: DenseMatrix,
    /// `lowerᵀ`, stored so the backward substitution sweep reads rows
    /// instead of walking columns of `lower` at stride `k` — same values,
    /// same operation order, cache-friendly access.
    upper: DenseMatrix,
}

impl GroundedCholesky {
    /// Factors the Laplacian `lap`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `lap` is not square;
    /// [`LinalgError::NotPositiveDefinite`] if the grounded reduction is not
    /// positive definite — i.e. the input was not a Laplacian of a graph
    /// with positive weights.
    pub fn new(lap: &CsrMatrix) -> Result<Self, LinalgError> {
        if lap.rows() != lap.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "grounded_cholesky",
                got: lap.cols(),
                expected: lap.rows(),
            });
        }
        let n = lap.rows();
        let component = connected_components(lap);
        let num_comps = component.iter().copied().max().map_or(0, |m| m + 1);
        let mut comp_size = vec![0usize; num_comps];
        for &c in &component {
            comp_size[c] += 1;
        }
        // Ground the first (lowest-id) vertex of every component.
        let mut grounded = vec![false; n];
        let mut seen = vec![false; num_comps];
        for v in 0..n {
            let c = component[v];
            if !seen[c] {
                seen[c] = true;
                grounded[v] = true;
            }
        }
        let mut reduced_index = vec![None; n];
        let mut reduced_vertices = Vec::new();
        for v in 0..n {
            if !grounded[v] {
                reduced_index[v] = Some(reduced_vertices.len());
                reduced_vertices.push(v);
            }
        }
        let k = reduced_vertices.len();
        let mut reduced = DenseMatrix::zeros(k, k);
        for (ri, &v) in reduced_vertices.iter().enumerate() {
            for (c, val) in lap.row(v) {
                if let Some(rj) = reduced_index[c] {
                    reduced.add_to(ri, rj, val);
                }
            }
        }
        let lower = cholesky_lower(&reduced)?;
        let upper = lower.transpose();
        Ok(Self {
            n,
            component,
            comp_size,
            reduced_vertices,
            lower,
            upper,
        })
    }

    /// Matrix order `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Component id per vertex.
    pub fn components(&self) -> &[usize] {
        &self.component
    }

    /// Applies the pseudo-inverse: returns `x = L† b`.
    ///
    /// `b` is first projected onto `range(L)` (per-component mean removed),
    /// so the call is meaningful for any `b`; the result has zero mean on
    /// every component.
    ///
    /// Allocates the output and a fresh scratch; per-iteration callers
    /// (preconditioner solves inside Chebyshev) should use
    /// [`GroundedCholesky::solve_into`] with reused buffers.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut scratch = SolveScratch::default();
        self.solve_into(b, &mut x, &mut scratch);
        x
    }

    /// Allocation-free pseudo-inverse application `x ← L† b`: the reduced
    /// right-hand side and per-component accumulators live in `scratch`
    /// (sized on first use, reused thereafter). The floating-point
    /// operation sequence matches [`GroundedCholesky::solve`] exactly, so
    /// both produce bitwise-equal results.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], scratch: &mut SolveScratch) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        // Project b onto range(L): remove per-component mean.
        let num_comps = self.comp_size.len();
        let k = self.reduced_vertices.len();
        scratch.comp.resize(num_comps, 0.0);
        scratch.rhs.resize(k, 0.0);
        scratch.comp.fill(0.0);
        for (v, &bv) in b.iter().enumerate() {
            scratch.comp[self.component[v]] += bv;
        }
        for (s, &c) in scratch.comp.iter_mut().zip(&self.comp_size) {
            *s /= c as f64; // sums → means, in place
        }
        for (ri, &v) in self.reduced_vertices.iter().enumerate() {
            scratch.rhs[ri] = b[v] - scratch.comp[self.component[v]];
        }
        cholesky_solve_in_place(&self.lower, &self.upper, &mut scratch.rhs);
        x.fill(0.0);
        for (ri, &v) in self.reduced_vertices.iter().enumerate() {
            x[v] = scratch.rhs[ri];
        }
        // Shift to the zero-mean representative per component.
        scratch.comp.fill(0.0);
        for (v, &xv) in x.iter().enumerate() {
            scratch.comp[self.component[v]] += xv;
        }
        for (v, xv) in x.iter_mut().enumerate() {
            let c = self.component[v];
            *xv -= scratch.comp[c] / self.comp_size[c] as f64;
        }
    }

    /// Batched pseudo-inverse application over `k` interleaved
    /// right-hand sides: `bs` and `xs` hold `n` rows of `k` lanes
    /// (`bs[v*k + j]` is entry `v` of vector `j`). The dense triangular
    /// factor — the memory-bandwidth bottleneck of the single-RHS path —
    /// streams through the cache **once per substitution sweep for the
    /// whole batch** instead of once per right-hand side, with lanes
    /// processed in register tiles of [`crate::RHS_LANES`].
    ///
    /// Every lane performs exactly the floating-point operations of
    /// [`GroundedCholesky::solve_into`] on that column (projection,
    /// substitution, mean shift — all in the same order), so column `j`
    /// of the result is bitwise identical to a single solve of column
    /// `j`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `bs.len() != n*k`, or `xs.len() != n*k`.
    pub fn solve_multi_into(
        &self,
        bs: &[f64],
        k: usize,
        xs: &mut [f64],
        scratch: &mut SolveScratch,
    ) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(bs.len(), self.n * k, "rhs batch length mismatch");
        assert_eq!(xs.len(), self.n * k, "solution batch length mismatch");
        let num_comps = self.comp_size.len();
        let kred = self.reduced_vertices.len();
        scratch.comp.resize(num_comps * k, 0.0);
        scratch.rhs.resize(kred * k, 0.0);
        scratch.comp.fill(0.0);
        // Project every column onto range(L): remove per-component means.
        for (v, brow) in bs.chunks(k).enumerate() {
            let base = self.component[v] * k;
            for (j, &bv) in brow.iter().enumerate() {
                scratch.comp[base + j] += bv;
            }
        }
        for (ci, &c) in self.comp_size.iter().enumerate() {
            for s in &mut scratch.comp[ci * k..(ci + 1) * k] {
                *s /= c as f64;
            }
        }
        for (ri, &v) in self.reduced_vertices.iter().enumerate() {
            let base = self.component[v] * k;
            for j in 0..k {
                scratch.rhs[ri * k + j] = bs[v * k + j] - scratch.comp[base + j];
            }
        }
        cholesky_solve_multi_in_place(&self.lower, &self.upper, &mut scratch.rhs, k);
        xs.fill(0.0);
        for (ri, &v) in self.reduced_vertices.iter().enumerate() {
            xs[v * k..(v + 1) * k].copy_from_slice(&scratch.rhs[ri * k..(ri + 1) * k]);
        }
        // Shift each column to its zero-mean representative per component.
        scratch.comp.fill(0.0);
        for (v, xrow) in xs.chunks(k).enumerate() {
            let base = self.component[v] * k;
            for (j, &xv) in xrow.iter().enumerate() {
                scratch.comp[base + j] += xv;
            }
        }
        for (v, xrow) in xs.chunks_mut(k).enumerate() {
            let c = self.component[v];
            let size = self.comp_size[c] as f64;
            for (j, xv) in xrow.iter_mut().enumerate() {
                *xv -= scratch.comp[c * k + j] / size;
            }
        }
    }
}

/// Reusable buffers for [`GroundedCholesky::solve_into`]: per-component
/// accumulators and the reduced right-hand side (which the triangular
/// solves overwrite in place).
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    comp: Vec<f64>,
    rhs: Vec<f64>,
}

/// Connected components over the off-diagonal sparsity pattern.
fn connected_components(lap: &CsrMatrix) -> Vec<usize> {
    let n = lap.rows();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for (c, val) in lap.row(v) {
                if c != v && val != 0.0 && comp[c] == usize::MAX {
                    comp[c] = next;
                    stack.push(c);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Dense Cholesky factorization `A = L Lᵀ` returning the lower factor.
fn cholesky_lower(a: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
    let n = a.rows();
    let mut l = DenseMatrix::zeros(n, n);
    // Relative pivot tolerance against the largest diagonal entry.
    let max_diag = (0..n).map(|i| a.get(i, i).abs()).fold(0.0f64, f64::max);
    let tol = 1e-12 * max_diag.max(1e-300);
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            let ljk = l.get(j, k);
            d -= ljk * ljk;
        }
        if d <= tol {
            return Err(LinalgError::NotPositiveDefinite { index: j, pivot: d });
        }
        let d = d.sqrt();
        l.set(j, j, d);
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, s / d);
        }
    }
    Ok(l)
}

/// Solves `L Lᵀ x = b` by forward/back substitution, overwriting `v`
/// (`b` on entry, `x` on exit). Both sweeps read only entries already in
/// their target state, so the in-place form performs exactly the
/// operations of the two-buffer formulation. `u` must be `lᵀ`: the back
/// sweep reads `u.get(i, k) == l.get(k, i)` so both sweeps walk rows of
/// a row-major matrix instead of columns at stride `n`.
fn cholesky_solve_in_place(l: &DenseMatrix, u: &DenseMatrix, v: &mut [f64]) {
    let n = l.rows();
    for i in 0..n {
        let li = l.row(i);
        let mut s = v[i];
        for k in 0..i {
            s -= li[k] * v[k];
        }
        v[i] = s / li[i];
    }
    for i in (0..n).rev() {
        let ui = u.row(i);
        let mut s = v[i];
        for k in (i + 1)..n {
            s -= ui[k] * v[k];
        }
        v[i] = s / ui[i];
    }
}

/// Batched `L Lᵀ X = B` over `k` interleaved columns (`v[r*k + j]` is
/// entry `r` of column `j`), lanes register-tiled in blocks of
/// [`crate::RHS_LANES`]. Each factor row is loaded once per sweep for
/// the whole batch — the `O(kred²)` factor traffic that dominates the
/// single-RHS solve is amortized over all `k` columns. Per column, the
/// substitutions perform exactly the operations of
/// [`cholesky_solve_in_place`], in the same order.
fn cholesky_solve_multi_in_place(l: &DenseMatrix, u: &DenseMatrix, v: &mut [f64], k: usize) {
    const LANES: usize = crate::csr::RHS_LANES;
    let n = l.rows();
    debug_assert_eq!(v.len(), n * k);
    let sweep = |rows: &DenseMatrix, v: &mut [f64], i: usize, lo: usize, hi: usize| {
        let ri = rows.row(i);
        let mut j = 0;
        while j + LANES <= k {
            let mut acc = [0.0f64; LANES];
            acc.copy_from_slice(&v[i * k + j..i * k + j + LANES]);
            for kk in lo..hi {
                let lik = ri[kk];
                let vk = &v[kk * k + j..kk * k + j + LANES];
                for (a, &vv) in acc.iter_mut().zip(vk) {
                    *a -= lik * vv;
                }
            }
            for (slot, a) in v[i * k + j..i * k + j + LANES].iter_mut().zip(acc) {
                *slot = a / ri[i];
            }
            j += LANES;
        }
        while j < k {
            let mut s = v[i * k + j];
            for kk in lo..hi {
                s -= ri[kk] * v[kk * k + j];
            }
            v[i * k + j] = s / ri[i];
            j += 1;
        }
    };
    for i in 0..n {
        sweep(l, v, i, 0, i);
    }
    for i in (0..n).rev() {
        sweep(u, v, i, i + 1, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_from_edges;
    use crate::vec_ops;
    use proptest::prelude::*;

    #[test]
    fn solves_connected_laplacian() {
        let edges = vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 0.5)];
        let lap = laplacian_from_edges(4, &edges);
        let chol = GroundedCholesky::new(&lap).unwrap();
        let b = vec![1.0, -0.5, 0.25, -0.75];
        let x = chol.solve(&b);
        let lx = lap.matvec(&x);
        for (got, want) in lx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // Pseudo-inverse representative: zero mean.
        assert!(vec_ops::mean(&x).abs() < 1e-12);
    }

    #[test]
    fn handles_disconnected_components_and_isolated_vertices() {
        // Component {0,1}, component {2,3,4}, isolated vertex 5.
        let edges = vec![(0, 1, 1.0), (2, 3, 1.0), (3, 4, 2.0)];
        let lap = laplacian_from_edges(6, &edges);
        let chol = GroundedCholesky::new(&lap).unwrap();
        assert_eq!(chol.components()[0], chol.components()[1]);
        assert_ne!(chol.components()[0], chol.components()[2]);
        let b = vec![1.0, -1.0, 2.0, -1.0, -1.0, 5.0];
        let x = chol.solve(&b);
        let lx = lap.matvec(&x);
        // b restricted to components with zero sum is reproduced exactly.
        for i in 0..5 {
            assert!((lx[i] - b[i]).abs() < 1e-9);
        }
        // Isolated vertex: nothing can be routed; x is 0 there.
        assert_eq!(x[5], 0.0);
    }

    #[test]
    fn projects_infeasible_rhs() {
        let lap = laplacian_from_edges(2, &[(0, 1, 1.0)]);
        let chol = GroundedCholesky::new(&lap).unwrap();
        // b has nonzero mean: the solver should act as L† b.
        let x = chol.solve(&[3.0, 1.0]);
        let lx = lap.matvec(&x);
        // L L† b = projection of b = b - mean = [1, -1].
        assert!((lx[0] - 1.0).abs() < 1e-12);
        assert!((lx[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_laplacian() {
        // Negative definite "Laplacian".
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, -1.0), (1, 1, -1.0), (0, 1, 0.5), (1, 0, 0.5)],
        );
        assert!(matches!(
            GroundedCholesky::new(&m),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn pseudo_inverse_property_on_random_connected_graphs(
            extra in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..5.0), 0..12),
            b_raw in proptest::collection::vec(-5f64..5.0, 8)
        ) {
            // Spanning path guarantees connectivity, extras are arbitrary.
            let mut edges: Vec<(usize, usize, f64)> = (0..7).map(|i| (i, i + 1, 1.0)).collect();
            edges.extend(extra.into_iter().filter(|&(u, v, _)| u != v));
            let lap = laplacian_from_edges(8, &edges);
            let chol = GroundedCholesky::new(&lap).unwrap();
            let mut b = b_raw;
            vec_ops::remove_mean(&mut b);
            let x = chol.solve(&b);
            let lx = lap.matvec(&x);
            for (got, want) in lx.iter().zip(&b) {
                prop_assert!((got - want).abs() < 1e-7);
            }
        }
    }
}
