use std::error::Error;
use std::fmt;

/// Errors raised by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// First dimension involved.
        got: usize,
        /// Second dimension involved.
        expected: usize,
    },
    /// A matrix expected to be positive definite was not (up to the given
    /// pivot tolerance); reported with the failing pivot index and value.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        index: usize,
        /// Value of the failing pivot.
        pivot: f64,
    },
    /// The QL eigenvalue iteration failed to converge within its iteration
    /// budget (numerically pathological input).
    EigenNoConvergence {
        /// Row at which convergence failed.
        index: usize,
    },
    /// An iterative solver exhausted its iteration budget before reaching
    /// the requested tolerance.
    IterationBudgetExhausted {
        /// Solver name.
        solver: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at exit.
        residual: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, got, expected } => {
                write!(
                    f,
                    "dimension mismatch in {op}: got {got}, expected {expected}"
                )
            }
            LinalgError::NotPositiveDefinite { index, pivot } => {
                write!(
                    f,
                    "matrix not positive definite: pivot {pivot:e} at index {index}"
                )
            }
            LinalgError::EigenNoConvergence { index } => {
                write!(f, "ql eigenvalue iteration did not converge at row {index}")
            }
            LinalgError::IterationBudgetExhausted {
                solver,
                iterations,
                residual,
            } => write!(
                f,
                "{solver} exhausted {iterations} iterations with relative residual {residual:e}"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = LinalgError::NotPositiveDefinite {
            index: 3,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("index 3"));
        let e = LinalgError::DimensionMismatch {
            op: "matvec",
            got: 2,
            expected: 5,
        };
        assert!(e.to_string().contains("matvec"));
    }
}
