//! Deterministic conjugate gradient — the reference iterative solver used
//! to cross-check the Chebyshev engine in tests and benchmarks.

use crate::vec_ops::{axpy, dot, norm2};
use crate::LinalgError;

/// Result of a conjugate gradient run.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖₂ / ‖b‖₂`.
    pub residual: f64,
}

/// Solves `A x = b` for a symmetric positive semi-definite operator given
/// as a closure, to relative residual `tol`.
///
/// For singular `A` (e.g. a Laplacian) the caller must supply `b` in
/// `range(A)`; CG then converges to the pseudo-inverse solution since the
/// Krylov space stays inside `range(A)`.
///
/// # Errors
///
/// [`LinalgError::IterationBudgetExhausted`] if `max_iter` iterations do
/// not reach the tolerance.
pub fn conjugate_gradient(
    apply_a: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<CgOutcome, LinalgError> {
    let n = b.len();
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    for k in 0..max_iter {
        if rs.sqrt() / bnorm <= tol {
            return Ok(CgOutcome {
                x,
                iterations: k,
                residual: rs.sqrt() / bnorm,
            });
        }
        let ap = apply_a(&p);
        let denom = dot(&p, &ap);
        if denom <= 0.0 {
            // Hit the nullspace direction: converged as far as possible.
            return Ok(CgOutcome {
                x,
                iterations: k,
                residual: rs.sqrt() / bnorm,
            });
        }
        let alpha = rs / denom;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &ap);
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs = rs_new;
    }
    let residual = rs.sqrt() / bnorm;
    if residual <= tol {
        Ok(CgOutcome {
            x,
            iterations: max_iter,
            residual,
        })
    } else {
        Err(LinalgError::IterationBudgetExhausted {
            solver: "conjugate_gradient",
            iterations: max_iter,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_from_edges;
    use crate::vec_ops::remove_mean;

    #[test]
    fn solves_spd_diagonal() {
        let apply = |x: &[f64]| vec![2.0 * x[0], 3.0 * x[1]];
        let out = conjugate_gradient(apply, &[4.0, 9.0], 1e-12, 100).unwrap();
        assert!((out.x[0] - 2.0).abs() < 1e-10);
        assert!((out.x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn zero_rhs_is_instant() {
        let out = conjugate_gradient(|x: &[f64]| x.to_vec(), &[0.0, 0.0], 1e-12, 10).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.x, vec![0.0, 0.0]);
    }

    #[test]
    fn solves_singular_laplacian_with_compatible_rhs() {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0), (0, 2, 2.0)];
        let lap = laplacian_from_edges(4, &edges);
        let mut b = vec![1.0, 2.0, -4.0, 3.0];
        remove_mean(&mut b);
        let out = conjugate_gradient(|x| lap.matvec(x), &b, 1e-10, 1000).unwrap();
        let lx = lap.matvec(&out.x);
        for (got, want) in lx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Very ill-conditioned 2x2 with a 1-iteration budget.
        let apply = |x: &[f64]| vec![1e8 * x[0] + x[1], x[0] + 1e-8 * x[1]];
        let err = conjugate_gradient(apply, &[1.0, 1.0], 1e-14, 1).unwrap_err();
        assert!(matches!(err, LinalgError::IterationBudgetExhausted { .. }));
    }
}
