//! Deterministic conjugate gradient — the reference iterative solver used
//! to cross-check the Chebyshev engine in tests and benchmarks.

use crate::vec_ops::{axpy, dot, norm2, xpay};
use crate::LinalgError;

/// Result of a conjugate gradient run.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖₂ / ‖b‖₂`.
    pub residual: f64,
}

/// Iteration statistics of [`conjugate_gradient_into`] (the solution
/// itself lands in the caller's `x` buffer).
#[derive(Debug, Clone, Copy)]
pub struct CgStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖₂ / ‖b‖₂`.
    pub residual: f64,
}

/// Reusable buffers for [`conjugate_gradient_into`]: residual, search
/// direction, and `A·p` product.
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    r: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// Workspace sized for length-`n` vectors.
    pub fn new(n: usize) -> Self {
        Self {
            r: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    fn resize(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }
}

/// Solves `A x = b` for a symmetric positive semi-definite operator given
/// as a closure, to relative residual `tol`.
///
/// For singular `A` (e.g. a Laplacian) the caller must supply `b` in
/// `range(A)`; CG then converges to the pseudo-inverse solution since the
/// Krylov space stays inside `range(A)`.
///
/// # Errors
///
/// [`LinalgError::IterationBudgetExhausted`] if `max_iter` iterations do
/// not reach the tolerance.
pub fn conjugate_gradient(
    apply_a: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<CgOutcome, LinalgError> {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut ws = CgWorkspace::new(n);
    let stats = conjugate_gradient_into(
        |p, out| {
            let ap = apply_a(p);
            assert_eq!(ap.len(), out.len(), "apply_a returned wrong length");
            out.copy_from_slice(&ap);
        },
        b,
        tol,
        max_iter,
        &mut x,
        &mut ws,
    )?;
    Ok(CgOutcome {
        x,
        iterations: stats.iterations,
        residual: stats.residual,
    })
}

/// Allocation-free core of [`conjugate_gradient`]: `apply_a(v, out)`
/// writes `A·v` into `out`, the iterate lands in `x`, intermediates live
/// in `ws`. The floating-point operation sequence matches the allocating
/// wrapper exactly, so both produce bitwise-equal iterates.
///
/// # Errors
///
/// [`LinalgError::IterationBudgetExhausted`] if `max_iter` iterations do
/// not reach the tolerance.
///
/// # Panics
///
/// Panics if `x.len() != b.len()`.
pub fn conjugate_gradient_into(
    mut apply_a: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    tol: f64,
    max_iter: usize,
    x: &mut [f64],
    ws: &mut CgWorkspace,
) -> Result<CgStats, LinalgError> {
    let n = b.len();
    assert_eq!(x.len(), n, "x length mismatch");
    x.fill(0.0);
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok(CgStats {
            iterations: 0,
            residual: 0.0,
        });
    }
    ws.resize(n);
    ws.r.copy_from_slice(b);
    ws.p.copy_from_slice(b);
    let mut rs = dot(&ws.r, &ws.r);
    for k in 0..max_iter {
        if rs.sqrt() / bnorm <= tol {
            return Ok(CgStats {
                iterations: k,
                residual: rs.sqrt() / bnorm,
            });
        }
        apply_a(&ws.p, &mut ws.ap);
        let denom = dot(&ws.p, &ws.ap);
        if denom <= 0.0 {
            // Hit the nullspace direction: converged as far as possible.
            return Ok(CgStats {
                iterations: k,
                residual: rs.sqrt() / bnorm,
            });
        }
        let alpha = rs / denom;
        axpy(x, alpha, &ws.p);
        axpy(&mut ws.r, -alpha, &ws.ap);
        let rs_new = dot(&ws.r, &ws.r);
        let beta = rs_new / rs;
        xpay(&mut ws.p, beta, &ws.r);
        rs = rs_new;
    }
    let residual = rs.sqrt() / bnorm;
    if residual <= tol {
        Ok(CgStats {
            iterations: max_iter,
            residual,
        })
    } else {
        Err(LinalgError::IterationBudgetExhausted {
            solver: "conjugate_gradient",
            iterations: max_iter,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_from_edges;
    use crate::vec_ops::remove_mean;

    #[test]
    fn solves_spd_diagonal() {
        let apply = |x: &[f64]| vec![2.0 * x[0], 3.0 * x[1]];
        let out = conjugate_gradient(apply, &[4.0, 9.0], 1e-12, 100).unwrap();
        assert!((out.x[0] - 2.0).abs() < 1e-10);
        assert!((out.x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn zero_rhs_is_instant() {
        let out = conjugate_gradient(|x: &[f64]| x.to_vec(), &[0.0, 0.0], 1e-12, 10).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.x, vec![0.0, 0.0]);
    }

    #[test]
    fn solves_singular_laplacian_with_compatible_rhs() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 2, 2.0),
        ];
        let lap = laplacian_from_edges(4, &edges);
        let mut b = vec![1.0, 2.0, -4.0, 3.0];
        remove_mean(&mut b);
        let out = conjugate_gradient(|x| lap.matvec(x), &b, 1e-10, 1000).unwrap();
        let lx = lap.matvec(&out.x);
        for (got, want) in lx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn into_variant_matches_allocating_api_bitwise() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 2, 2.0),
        ];
        let lap = laplacian_from_edges(4, &edges);
        let mut b = vec![1.0, 2.0, -4.0, 3.0];
        remove_mean(&mut b);
        let out = conjugate_gradient(|x| lap.matvec(x), &b, 1e-10, 1000).unwrap();
        let mut x = vec![0.0; 4];
        let mut ws = CgWorkspace::new(4);
        let stats = conjugate_gradient_into(
            |p, ap| lap.matvec_into(p, ap),
            &b,
            1e-10,
            1000,
            &mut x,
            &mut ws,
        )
        .unwrap();
        assert_eq!(stats.iterations, out.iterations);
        assert_eq!(stats.residual.to_bits(), out.residual.to_bits());
        for (a, b) in x.iter().zip(&out.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Very ill-conditioned 2x2 with a 1-iteration budget.
        let apply = |x: &[f64]| vec![1e8 * x[0] + x[1], x[0] + 1e-8 * x[1]];
        let err = conjugate_gradient(apply, &[1.0, 1.0], 1e-14, 1).unwrap_err();
        assert!(matches!(err, LinalgError::IterationBudgetExhausted { .. }));
    }
}
