//! Deterministic parallel kernel shim.
//!
//! With the `parallel` feature (default) this re-exports the fixed-chunk
//! primitives of [`cc_par`]; without it, drop-in serial implementations
//! with the same signatures take over. Because every parallel kernel in
//! this workspace decomposes its work by problem size only — never by
//! thread count — both configurations produce **bitwise identical**
//! results, and so does any thread count in between (see
//! `DESIGN.md`, "Parallelism & determinism").
//!
//! Downstream crates (`cc-sparsify`, `cc-maxflow`, `cc-mcf`, benches)
//! should route their data parallelism through this module rather than
//! depending on `cc-par` directly, so a single feature flag on
//! `cc-linalg` controls the whole workspace.

/// True when this build routes the kernels through `cc-par` (the
/// `parallel` feature); false in the serial twin build.
#[cfg(feature = "parallel")]
pub const PARALLEL_ENABLED: bool = true;
/// True when this build routes the kernels through `cc-par` (the
/// `parallel` feature); false in the serial twin build.
#[cfg(not(feature = "parallel"))]
pub const PARALLEL_ENABLED: bool = false;

#[cfg(feature = "parallel")]
pub use cc_par::{
    current_threads, max_threads, par_chunks_mut, par_map, par_map_chunks, with_threads,
};

#[cfg(not(feature = "parallel"))]
mod serial {
    use std::ops::Range;

    /// The configured thread budget (always 1 in the serial build).
    pub fn max_threads() -> usize {
        1
    }

    /// The thread budget in effect for the current thread (always 1).
    pub fn current_threads() -> usize {
        1
    }

    /// Runs `f`; the serial build has nothing to override.
    pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        assert!(n > 0, "thread budget must be positive");
        f()
    }

    /// Serial twin of `cc_par::par_chunks_mut`: same chunking, same
    /// visitation order, one thread.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        for (idx, sl) in data.chunks_mut(chunk).enumerate() {
            f(idx, sl);
        }
    }

    /// Serial twin of `cc_par::par_map_chunks`: results in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn par_map_chunks<R, F>(len: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        (0..len)
            .step_by(chunk)
            .map(|lo| f(lo..(lo + chunk).min(len)))
            .collect()
    }

    /// Serial twin of `cc_par::par_map`: plain `iter().map()`.
    pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        items.iter().map(f).collect()
    }
}

#[cfg(not(feature = "parallel"))]
pub use serial::*;
