//! Graph Laplacians and the `‖·‖_L` norm of §2.2 of the paper.

use crate::{CsrMatrix, DenseMatrix};

/// Assembles the Laplacian `L = D − A` of an undirected weighted multigraph
/// given as `(u, v, w)` edge triples over vertices `0..n`.
///
/// Parallel edges accumulate; self-loops are ignored (they cancel in
/// `D − A`). Weights should be positive for `L` to be positive
/// semi-definite.
///
/// # Panics
///
/// Panics if an endpoint is out of range.
pub fn laplacian_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(4 * edges.len());
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        if u == v {
            continue;
        }
        triplets.push((u, u, w));
        triplets.push((v, v, w));
        triplets.push((u, v, -w));
        triplets.push((v, u, -w));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// The Laplacian quadratic form directly from the edge list:
/// `xᵀ L x = Σ_{(u,v)∈E} w(u,v) (x_u − x_v)²`.
///
/// Cheaper and better conditioned than going through the assembled matrix.
///
/// # Panics
///
/// Panics if an endpoint indexes outside `x`.
pub fn laplacian_quadratic_form(edges: &[(usize, usize, f64)], x: &[f64]) -> f64 {
    edges
        .iter()
        .map(|&(u, v, w)| {
            let d = x[u] - x[v];
            w * d * d
        })
        .sum()
}

/// Evaluates `‖x‖_L = √(xᵀ L x)` norms with respect to a fixed edge list.
///
/// ```
/// use cc_linalg::LaplacianNorm;
/// let norm = LaplacianNorm::new(vec![(0, 1, 1.0), (1, 2, 4.0)]);
/// assert!((norm.norm(&[0.0, 1.0, 0.0]) - (5.0f64).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LaplacianNorm {
    edges: Vec<(usize, usize, f64)>,
}

impl LaplacianNorm {
    /// Creates the norm evaluator for the given weighted edge list.
    pub fn new(edges: Vec<(usize, usize, f64)>) -> Self {
        Self { edges }
    }

    /// `‖x‖_L`.
    pub fn norm(&self, x: &[f64]) -> f64 {
        laplacian_quadratic_form(&self.edges, x).max(0.0).sqrt()
    }

    /// `‖x − y‖_L`, the error functional of Theorem 1.1.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        let d = crate::vec_ops::sub(x, y);
        self.norm(&d)
    }

    /// The underlying edge list.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }
}

/// Dense normalized Laplacian `N = D^{-1/2} L D^{-1/2}` of the graph.
///
/// Isolated vertices (degree 0) contribute zero rows/columns. Used for
/// spectral-gap certification of expander decomposition clusters; the
/// eigenvalues of `N` lie in `[0, 2]`.
///
/// # Panics
///
/// Panics if an endpoint is out of range or a weight is negative.
pub fn normalized_laplacian_dense(n: usize, edges: &[(usize, usize, f64)]) -> DenseMatrix {
    let mut deg = vec![0.0; n];
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge out of range");
        assert!(w >= 0.0, "negative weight");
        if u == v {
            continue;
        }
        deg[u] += w;
        deg[v] += w;
    }
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut m = DenseMatrix::zeros(n, n);
    for (i, &d) in deg.iter().enumerate() {
        if d > 0.0 {
            m.set(i, i, 1.0);
        }
    }
    for &(u, v, w) in edges {
        if u == v {
            continue;
        }
        let x = w * inv_sqrt[u] * inv_sqrt[v];
        m.add_to(u, v, -x);
        m.add_to(v, u, -x);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetric_eigen;
    use proptest::prelude::*;

    #[test]
    fn laplacian_of_single_edge() {
        let lap = laplacian_from_edges(2, &[(0, 1, 3.0)]);
        assert_eq!(lap.get(0, 0), 3.0);
        assert_eq!(lap.get(0, 1), -3.0);
        assert_eq!(lap.get(1, 1), 3.0);
    }

    #[test]
    fn rows_sum_to_zero() {
        let lap = laplacian_from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5), (0, 3, 1.5)]);
        for r in 0..4 {
            let s: f64 = lap.row(r).map(|(_, v)| v).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_edges_accumulate() {
        let lap = laplacian_from_edges(2, &[(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(lap.get(0, 1), -3.0);
    }

    #[test]
    fn self_loops_ignored() {
        let lap = laplacian_from_edges(2, &[(0, 0, 5.0), (0, 1, 1.0)]);
        assert_eq!(lap.get(0, 0), 1.0);
    }

    #[test]
    fn quadratic_form_matches_matrix() {
        let edges = vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 0.25)];
        let lap = laplacian_from_edges(3, &edges);
        let x = [0.3, -1.2, 2.0];
        assert!((laplacian_quadratic_form(&edges, &x) - lap.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn normalized_laplacian_spectrum_in_0_2() {
        // Cycle of 5 vertices.
        let edges: Vec<_> = (0..5).map(|i| (i, (i + 1) % 5, 1.0)).collect();
        let nl = normalized_laplacian_dense(5, &edges);
        let eig = symmetric_eigen(&nl).unwrap();
        for &lam in eig.eigenvalues() {
            assert!((-1e-9..=2.0 + 1e-9).contains(&lam), "lambda={lam}");
        }
        assert!(eig.eigenvalues()[0].abs() < 1e-9);
    }

    #[test]
    fn norm_evaluator() {
        let norm = LaplacianNorm::new(vec![(0, 1, 2.0)]);
        assert!((norm.norm(&[1.0, 0.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert!(norm.distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn quadratic_form_nonnegative(
            edges in proptest::collection::vec((0usize..6, 0usize..6, 0.01f64..10.0), 1..15),
            x in proptest::collection::vec(-5f64..5.0, 6)
        ) {
            prop_assert!(laplacian_quadratic_form(&edges, &x) >= -1e-12);
        }

        #[test]
        fn constant_vectors_in_nullspace(
            edges in proptest::collection::vec((0usize..5, 0usize..5, 0.01f64..10.0), 1..10),
            c in -10f64..10.0
        ) {
            let lap = laplacian_from_edges(5, &edges);
            let y = lap.matvec(&[c; 5]);
            for v in y {
                prop_assert!(v.abs() < 1e-9);
            }
        }
    }
}
