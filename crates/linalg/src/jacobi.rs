//! Cyclic Jacobi eigenvalue iteration — an independent, slower eigensolver
//! used to cross-validate the primary Householder+QL path
//! ([`crate::symmetric_eigen`]). Everything downstream (sparsifier
//! certificates, decomposition gaps) rests on exact eigencomputation, so
//! the repository carries two disjoint implementations and tests them
//! against each other.

use crate::{DenseMatrix, LinalgError};

/// Computes the eigenvalues (ascending) of a symmetric matrix by cyclic
/// Jacobi rotations. Eigenvectors are not accumulated — this exists purely
/// as a validation oracle.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `a` is not square;
/// [`LinalgError::EigenNoConvergence`] if the off-diagonal mass fails to
/// vanish within the sweep budget.
pub fn jacobi_eigenvalues(a: &DenseMatrix) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "jacobi_eigenvalues",
            got: a.cols(),
            expected: a.rows(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut m: Vec<Vec<f64>> = (0..n).map(|r| a.row(r).to_vec()).collect();
    let frob: f64 = m
        .iter()
        .flat_map(|row| row.iter())
        .map(|x| x * x)
        .sum::<f64>()
        .sqrt()
        .max(1e-300);
    let tol = 1e-14 * frob;
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[p][q] * m[p][q];
            }
        }
        if off.sqrt() <= tol {
            let mut eig: Vec<f64> = (0..n).map(|i| m[i][i]).collect();
            eig.sort_by(|x, y| x.partial_cmp(y).expect("finite eigenvalues"));
            return Ok(eig);
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p][q];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[p][p];
                let aqq = m[q][q];
                // Rotation angle zeroing (p, q).
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let (mkp, mkq) = (m[k][p], m[k][q]);
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[p][k], m[q][k]);
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
            }
        }
    }
    Err(LinalgError::EigenNoConvergence { index: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_from_edges;
    use crate::symmetric_eigen;
    use proptest::prelude::*;

    #[test]
    fn agrees_with_ql_on_laplacians() {
        let families: Vec<Vec<(usize, usize, f64)>> = vec![
            (0..7).map(|i| (i, i + 1, 1.0)).collect(),
            (0..8).map(|i| (i, (i + 1) % 8, (i + 1) as f64)).collect(),
            vec![
                (0, 1, 2.0),
                (1, 2, 0.5),
                (2, 3, 3.0),
                (0, 3, 1.0),
                (1, 3, 4.0),
            ],
        ];
        for edges in families {
            let n = edges.iter().map(|&(u, v, _)| u.max(v)).max().unwrap() + 1;
            let lap = laplacian_from_edges(n, &edges).to_dense();
            let ql = symmetric_eigen(&lap).unwrap();
            let jac = jacobi_eigenvalues(&lap).unwrap();
            for (a, b) in ql.eigenvalues().iter().zip(&jac) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(jacobi_eigenvalues(&DenseMatrix::zeros(0, 0))
            .unwrap()
            .is_empty());
        let a = DenseMatrix::from_row_major(1, 1, vec![-4.5]);
        assert_eq!(jacobi_eigenvalues(&a).unwrap(), vec![-4.5]);
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            jacobi_eigenvalues(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn cross_validates_ql_on_random_symmetric(vals in proptest::collection::vec(-4f64..4.0, 36)) {
            let mut a = DenseMatrix::zeros(6, 6);
            for r in 0..6 {
                for c in 0..6 {
                    let v = vals[r * 6 + c];
                    a.add_to(r, c, v / 2.0);
                    a.add_to(c, r, v / 2.0);
                }
            }
            let ql = symmetric_eigen(&a).unwrap();
            let jac = jacobi_eigenvalues(&a).unwrap();
            for (x, y) in ql.eigenvalues().iter().zip(&jac) {
                prop_assert!((x - y).abs() < 1e-8, "{} vs {}", x, y);
            }
        }
    }
}
