//! Proves the batched multi-RHS solver path is allocation-free in steady
//! state: one sparsifier build amortizes across a whole batch of
//! right-hand sides without the allocator ever being consulted.
//!
//! Same harness as `cc-linalg/tests/alloc_free.rs`: a counting global
//! allocator wraps `System`; the sparsifier build (which talks to the
//! `Clique` and allocates freely) happens outside the armed region, one
//! warm-up batched solve sizes every workspace, and the armed region
//! re-runs `SparsifierSolver::solve_multi_into` and the full batched
//! Chebyshev solve and asserts the counter did not move.
//!
//! Threads are pinned to 1 (the fan-out machinery allocates on spawn and
//! results are bitwise identical either way); a single `#[test]` keeps
//! the counter free of harness noise from concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cc_linalg::{chebyshev_solve_multi_into, laplacian_from_edges, par, BatchWorkspace};
use cc_model::Clique;
use cc_sparsify::{build_sparsifier, SparsifierSolveScratch, SparsifyParams};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn armed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (out, ALLOCATIONS.load(Ordering::SeqCst))
}

#[test]
fn batched_solve_steady_state_performs_zero_heap_allocations() {
    par::with_threads(1, || {
        let n = 24;
        let k = 8;
        let g = cc_graph::generators::random_connected(n, 80, 4, 7);
        let mut clique = Clique::new(n);
        let h = build_sparsifier(&mut clique, &g, &SparsifyParams::default()).unwrap();
        let solver = h.solver().unwrap();
        let lap = laplacian_from_edges(n, &g.edge_triples());
        let kappa = h.kappa();
        let alpha = h.alpha();

        // Interleaved batch of zero-mean right-hand sides.
        let mut bs = vec![0.0f64; n * k];
        for j in 0..k {
            for v in 0..n {
                bs[v * k + j] = ((v * 13 + j * 5) % 11) as f64 - 5.0;
            }
            let mean: f64 = (0..n).map(|v| bs[v * k + j]).sum::<f64>() / n as f64;
            for v in 0..n {
                bs[v * k + j] -= mean;
            }
        }

        let mut xs = vec![0.0f64; n * k];
        let mut ws = BatchWorkspace::new(n, k);
        let mut scratch = SparsifierSolveScratch::default();

        // Warm-up: size every workspace once.
        solver.solve_multi_into(&bs, k, &mut xs, &mut scratch);
        chebyshev_solve_multi_into(
            |p, out| lap.matvec_multi_into(p, k, out),
            |r, out| {
                solver.solve_multi_into(r, k, out, &mut scratch);
                for zi in out.iter_mut() {
                    *zi /= alpha;
                }
            },
            &bs,
            k,
            kappa,
            20,
            &mut xs,
            &mut ws,
        );

        let ((), count) = armed(|| {
            solver.solve_multi_into(&bs, k, &mut xs, &mut scratch);
        });
        assert_eq!(count, 0, "SparsifierSolver::solve_multi_into allocated");

        let (iters, count) = armed(|| {
            chebyshev_solve_multi_into(
                |p, out| lap.matvec_multi_into(p, k, out),
                |r, out| {
                    solver.solve_multi_into(r, k, out, &mut scratch);
                    for zi in out.iter_mut() {
                        *zi /= alpha;
                    }
                },
                &bs,
                k,
                kappa,
                20,
                &mut xs,
                &mut ws,
            )
        });
        assert_eq!(iters, 20);
        assert_eq!(count, 0, "chebyshev_solve_multi_into allocated");
    });
}
