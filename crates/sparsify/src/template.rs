//! Sparsifier templates: reuse the expander decomposition across weight
//! changes.
//!
//! The interior point methods solve hundreds of Laplacian systems whose
//! graphs share one edge support and differ only in weights (resistances
//! change every step). The decomposition's *cluster structure* depends on
//! weights, but any fixed partition stays **correct** for new weights —
//! only the certified per-cluster `α` moves. A [`SparsifierTemplate`]
//! freezes the cluster structure of one construction and
//! [`SparsifierTemplate::instantiate`]s it for new weights by recomputing
//! the per-cluster spectral certificates exactly (dense eigensolve, free
//! local computation), skipping the recursive re-decomposition entirely.
//!
//! This is an *extension* beyond the paper (which rebuilds per solve,
//! within its `n^{o(1)}` budget): correctness is unchanged — the
//! instantiated sparsifier carries a freshly certified `α`, it may just be
//! larger than a from-scratch rebuild's when the weights drift far from
//! the template's.

use cc_graph::{EdgeId, Graph, VertexId};
use cc_linalg::{normalized_laplacian_dense, symmetric_eigen};
use cc_model::Communicator;

use crate::error::SparsifyError;
use crate::gadget::ClusterGadget;
use crate::sparsifier::{build_sparsifier, SparsifyParams, SpectralSparsifier};

/// One frozen cluster: its vertices and its intra-cluster edge ids.
#[derive(Debug, Clone)]
struct ClusterTemplate {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

/// One frozen decomposition level.
#[derive(Debug, Clone)]
struct LevelTemplate {
    /// Clusters realized as star gadgets.
    gadget_clusters: Vec<ClusterTemplate>,
    /// Edges kept verbatim at this level (small clusters / backstop).
    direct_edges: Vec<EdgeId>,
}

/// A frozen multi-level cluster structure, instantiable for any weight
/// assignment on the same edge support.
#[derive(Debug, Clone)]
pub struct SparsifierTemplate {
    n: usize,
    m: usize,
    levels: Vec<LevelTemplate>,
}

impl SparsifierTemplate {
    /// Number of original vertices the template was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges of the supporting graph.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of frozen levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Instantiates the template for `g` (same vertex count and edge list
    /// order as the template's source graph; weights may differ).
    ///
    /// Rounds charged: 2 broadcast rounds per level (cluster ids +
    /// weighted degrees) — the decomposition itself is reused, so no
    /// \[CS20\] oracle charge recurs.
    ///
    /// # Errors
    ///
    /// [`SparsifyError::Comm`] on substrate failure;
    /// [`SparsifyError::Factorization`] if a cluster recertification
    /// eigendecomposition fails.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s vertex or edge count differs from the template's,
    /// or `clique.n() < g.n()`.
    pub fn instantiate<C: Communicator>(
        &self,
        clique: &mut C,
        g: &Graph,
    ) -> Result<SpectralSparsifier, SparsifyError> {
        assert_eq!(g.n(), self.n, "template built for a different vertex count");
        assert_eq!(g.m(), self.m, "template built for a different edge support");
        assert!(clique.n() >= g.n(), "clique too small");
        clique.phase("sparsify_from_template", |clique| {
            let mut edges: Vec<(usize, usize, f64)> = Vec::new();
            let mut aux_count = 0usize;
            let mut alpha: f64 = 1.0;
            for level in &self.levels {
                clique.broadcast_all(&vec![0u64; clique.n()])?;
                clique.broadcast_all(&vec![0u64; clique.n()])?;
                for e in &level.direct_edges {
                    let edge = g.edge(*e);
                    edges.push((edge.u, edge.v, edge.weight));
                }
                for cluster in &level.gadget_clusters {
                    // Weighted intra-cluster degrees under the NEW weights.
                    let local: std::collections::BTreeMap<VertexId, usize> = cluster
                        .vertices
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i))
                        .collect();
                    let k = cluster.vertices.len();
                    let mut triples = Vec::with_capacity(cluster.edges.len());
                    let mut degrees = vec![0.0; k];
                    for &eid in &cluster.edges {
                        let e = g.edge(eid);
                        let (lu, lv) = (local[&e.u], local[&e.v]);
                        triples.push((lu, lv, e.weight));
                        degrees[lu] += e.weight;
                        degrees[lv] += e.weight;
                    }
                    // Exact spectral recertification for the new weights.
                    let nl = normalized_laplacian_dense(k, &triples);
                    let eig = symmetric_eigen(&nl)?;
                    let mu2 = eig.eigenvalues()[1].max(1e-12);
                    let mu_max = eig.eigenvalues().last().copied().unwrap_or(mu2).max(mu2);
                    let gadget =
                        ClusterGadget::new(cluster.vertices.clone(), &degrees, mu2, mu_max);
                    let center = self.n + aux_count;
                    aux_count += 1;
                    alpha = alpha.max(gadget.alpha);
                    gadget.emit_edges(center, &mut edges);
                }
            }
            Ok(SpectralSparsifier::from_parts(
                self.n,
                aux_count,
                edges,
                alpha,
                self.levels.len(),
            ))
        })
    }
}

/// Builds the deterministic sparsifier of Theorem 3.3 **and** the frozen
/// template of its cluster structure, for later
/// [`SparsifierTemplate::instantiate`] calls on reweighted graphs.
///
/// The sparsifier equals `build_sparsifier`'s (same rounds charged); the
/// template adds no communication.
///
/// # Errors
///
/// Same conditions as [`build_sparsifier`].
///
/// # Panics
///
/// Same conditions as [`build_sparsifier`].
pub fn build_sparsifier_with_template<C: Communicator>(
    clique: &mut C,
    g: &Graph,
    params: &SparsifyParams,
) -> Result<(SpectralSparsifier, SparsifierTemplate), SparsifyError> {
    // Re-run the level loop with structure capture. To avoid duplicating
    // the construction logic, the capture reruns the decomposition exactly
    // as `build_sparsifier` does (both are deterministic), recording the
    // per-level assignments; the sparsifier itself comes from the
    // canonical builder so the two can never drift apart.
    let sparsifier = build_sparsifier(clique, g, params)?;

    let phi = params
        .phi
        .unwrap_or_else(|| crate::decomposition::default_phi(g));
    let max_levels = params
        .max_levels
        .unwrap_or_else(|| 2 * ((2.0 + g.total_weight()).log2().ceil() as usize) + 8);

    let mut levels = Vec::new();
    let mut remaining = g.clone();
    // Map each level-graph edge id back to the original edge id.
    let mut id_map: Vec<EdgeId> = (0..g.m()).collect();
    let mut level_count = 0usize;
    while remaining.m() > 0 {
        if level_count >= max_levels {
            // Backstop: leftovers become direct edges of a final level.
            levels.push(LevelTemplate {
                gadget_clusters: Vec::new(),
                direct_edges: id_map.clone(),
            });
            break;
        }
        level_count += 1;
        let dec = crate::decomposition::expander_decompose(&remaining, phi)?;
        let mut level = LevelTemplate {
            gadget_clusters: Vec::new(),
            direct_edges: Vec::new(),
        };
        for cluster in &dec.clusters {
            if cluster.edges.is_empty() {
                continue;
            }
            let orig_edges: Vec<EdgeId> = cluster.edges.iter().map(|&e| id_map[e]).collect();
            if cluster.edges.len() <= cluster.len() + params.direct_edge_slack {
                level.direct_edges.extend(orig_edges);
            } else {
                level.gadget_clusters.push(ClusterTemplate {
                    vertices: cluster.vertices.clone(),
                    edges: orig_edges,
                });
            }
        }
        levels.push(level);
        let crossing: std::collections::BTreeSet<usize> =
            dec.crossing_edges.iter().copied().collect();
        let mut next_map = Vec::with_capacity(crossing.len());
        for &e in &dec.crossing_edges {
            next_map.push(id_map[e]);
        }
        // Keep next_map aligned with edge_subgraph's insertion order
        // (ascending edge id — crossing_edges is ascending).
        remaining = remaining.edge_subgraph(|e| crossing.contains(&e));
        id_map = next_map;
    }
    let template = SparsifierTemplate {
        n: g.n(),
        m: g.m(),
        levels,
    };
    Ok((sparsifier, template))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_sparsifier;
    use cc_graph::generators;
    use cc_model::Clique;

    fn reweight(g: &Graph, factor: impl Fn(usize) -> f64) -> Graph {
        let mut out = Graph::new(g.n());
        for (i, e) in g.edges().iter().enumerate() {
            out.add_edge(e.u, e.v, e.weight * factor(i));
        }
        out
    }

    #[test]
    fn instantiating_with_identical_weights_matches_certification() {
        let g = generators::random_connected(32, 120, 4, 5);
        let mut clique = Clique::new(32);
        let (h, template) =
            build_sparsifier_with_template(&mut clique, &g, &SparsifyParams::default()).unwrap();
        let h2 = template.instantiate(&mut clique, &g).unwrap();
        assert_eq!(h.edge_count(), h2.edge_count());
        assert!((h.alpha() - h2.alpha()).abs() < 1e-9);
        let bounds = verify_sparsifier(&g, &h2).unwrap();
        assert!(bounds.alpha() <= h2.alpha() * (1.0 + 1e-6));
    }

    #[test]
    fn reweighted_instances_stay_honestly_certified() {
        let g = generators::random_connected(28, 100, 2, 7);
        let mut clique = Clique::new(28);
        let (_, template) =
            build_sparsifier_with_template(&mut clique, &g, &SparsifyParams::default()).unwrap();
        // Weights drifting by up to 16x, as IPM resistances do.
        for seed in 1..4u64 {
            let g2 = reweight(&g, |i| 1.0 + ((i as u64 * seed) % 16) as f64);
            let h = template.instantiate(&mut clique, &g2).unwrap();
            let bounds = verify_sparsifier(&g2, &h).unwrap();
            assert!(
                bounds.alpha() <= h.alpha() * (1.0 + 1e-6),
                "claimed {} exact {}",
                h.alpha(),
                bounds.alpha()
            );
            // The preconditioner remains usable.
            assert!(h.solver().is_ok());
        }
    }

    #[test]
    fn template_instantiation_charges_fewer_rounds_than_rebuild() {
        let g = generators::random_connected(32, 150, 4, 9);
        let mut c1 = Clique::new(32);
        let (_, template) =
            build_sparsifier_with_template(&mut c1, &g, &SparsifyParams::default()).unwrap();
        let build_rounds = c1.ledger().total_rounds();
        let before = c1.ledger().total_rounds();
        let _ = template.instantiate(&mut c1, &g).unwrap();
        let inst_rounds = c1.ledger().total_rounds() - before;
        assert!(
            inst_rounds < build_rounds,
            "instantiate {inst_rounds} vs build {build_rounds}"
        );
        // No oracle charge on instantiation.
        assert_eq!(
            c1.ledger().phase_prefix_total("sparsify_from_template"),
            inst_rounds
        );
    }

    #[test]
    #[should_panic(expected = "different edge support")]
    fn rejects_mismatched_support() {
        let g = generators::cycle(8);
        let mut clique = Clique::new(8);
        let (_, template) =
            build_sparsifier_with_template(&mut clique, &g, &SparsifyParams::default()).unwrap();
        let g2 = generators::path(8);
        let _ = template.instantiate(&mut clique, &g2);
    }
}
