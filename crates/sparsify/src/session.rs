//! Cache-backed sparsifier sessions.
//!
//! A [`SparsifierSession`] owns a [`TemplateCache`] and a fixed
//! [`SparsifyParams`], and builds sparsifiers through the cache: the
//! first build on an edge support pays the full Theorem 3.3 expander
//! decomposition and publishes its frozen template; every later build on
//! the same support (same endpoint list, any weights) replaces the
//! `n^{o(1)}`-round decomposition with a 2-broadcast-per-level
//! instantiation whose per-cluster `α` is recertified exactly. The
//! session is the reentrant entry point the service layer
//! (`DESIGN.md` §11) uses per engine; [`crate::build_sparsifier`] remains
//! the one-shot wrapper.

use cc_graph::Graph;
use cc_model::Communicator;

use crate::cache::{TemplateCache, TemplateKey};
use crate::error::SparsifyError;
use crate::sparsifier::{SparsifyParams, SpectralSparsifier};
use crate::template::build_sparsifier_with_template;

/// A reentrant sparsifier-building session around a shared
/// [`TemplateCache`]. `Clone` shares the cache (handle clone), so one
/// session's builds feed another's.
#[derive(Debug, Clone, Default)]
pub struct SparsifierSession {
    cache: TemplateCache,
    params: SparsifyParams,
}

impl SparsifierSession {
    /// A session with a fresh private cache.
    pub fn new(params: SparsifyParams) -> Self {
        Self {
            cache: TemplateCache::new(),
            params,
        }
    }

    /// A session over an existing (possibly shared) cache.
    pub fn with_cache(params: SparsifyParams, cache: TemplateCache) -> Self {
        Self { cache, params }
    }

    /// The backing cache (shared handle; hit/miss counters live here).
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// The construction parameters every build uses.
    pub fn params(&self) -> &SparsifyParams {
        &self.params
    }

    /// Builds the sparsifier of `g` through the cache: instantiates a
    /// published template when the support is known, otherwise runs the
    /// full deterministic construction and publishes its template.
    /// Rounds are charged to `clique` either way; a hit is observable as
    /// an increment of [`TemplateCache::hits`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::build_sparsifier`] /
    /// [`crate::SparsifierTemplate::instantiate`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `clique.n() < g.n()`.
    pub fn build<C: Communicator>(
        &self,
        clique: &mut C,
        g: &Graph,
    ) -> Result<SpectralSparsifier, SparsifyError> {
        let key = TemplateKey::for_support(g.n(), &g.edge_triples());
        if let Some(template) = self.cache.get(&key) {
            return template.instantiate(clique, g);
        }
        let (sparsifier, template) = build_sparsifier_with_template(clique, g, &self.params)?;
        self.cache.insert(key, template);
        Ok(sparsifier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;

    #[test]
    fn second_build_on_same_support_hits_the_cache() {
        let g = generators::random_connected(20, 60, 4, 5);
        let session = SparsifierSession::new(SparsifyParams::default());
        let mut clique = Clique::new(20);
        let h1 = session.build(&mut clique, &g).unwrap();
        assert_eq!(session.cache().hits(), 0);
        assert_eq!(session.cache().misses(), 1);
        let build_rounds = clique.ledger().total_rounds();

        // Same support, scaled weights: instantiation, not decomposition.
        let mut g2 = Graph::new(g.n());
        for e in g.edges() {
            g2.add_edge(e.u, e.v, e.weight * 3.0);
        }
        let before = clique.ledger().total_rounds();
        let h2 = session.build(&mut clique, &g2).unwrap();
        let hit_rounds = clique.ledger().total_rounds() - before;
        assert_eq!(session.cache().hits(), 1);
        assert!(h1.alpha() >= 1.0 && h2.alpha() >= 1.0);
        assert!(
            hit_rounds < build_rounds,
            "instantiation {hit_rounds} vs build {build_rounds}"
        );
    }

    #[test]
    fn clones_share_one_store() {
        let g = generators::expander(16);
        let a = SparsifierSession::new(SparsifyParams::default());
        let b = a.clone();
        let mut clique = Clique::new(16);
        a.build(&mut clique, &g).unwrap();
        b.build(&mut clique, &g).unwrap();
        assert_eq!(a.cache().hits(), 1, "clone must see the published template");
    }
}
