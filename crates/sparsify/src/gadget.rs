//! Product-demand-graph proxies realized as exact star gadgets.
//!
//! For a cluster `G'` with weighted degrees `d` and `S = Σd`, \[CGLN+20\]
//! approximate `G'` by the product demand graph `H(d)` (complete graph,
//! `w(u,v) = d_u d_v`), then sparsify `H(d)` internally. This crate skips
//! the internal sparsification entirely by using the identity
//!
//! ```text
//! L_{H(d)} = S·diag(d) − d dᵀ = S · Schur( star with center weights d ),
//! ```
//!
//! i.e. the Schur complement of a weighted star onto its leaves *is* the
//! (scaled) product demand graph. A cluster proxy is therefore one
//! auxiliary vertex plus `|V'|` star edges with weights `c·d_v`, where `c`
//! is chosen so the certified sandwich
//! `(1/α)·Schur ⪯ L_{G'} ⪯ α·Schur` is balanced: with exact normalized
//! Laplacian spectrum `µ₂, µ_max` of the cluster, `c = √(µ₂·µ_max)` and
//! `α = √(µ_max/µ₂)`.

use cc_graph::{Graph, VertexId};
use cc_linalg::DenseMatrix;

/// A star gadget standing in for one expander cluster.
#[derive(Debug, Clone)]
pub struct ClusterGadget {
    /// Cluster vertices (global ids), ascending.
    pub vertices: Vec<VertexId>,
    /// Star edge weight `c·d_v` per vertex, aligned with `vertices`.
    pub star_weights: Vec<f64>,
    /// Certified per-cluster approximation factor `α = √(µ_max/µ₂)`.
    pub alpha: f64,
}

impl ClusterGadget {
    /// Builds the gadget for a cluster with intra-cluster weighted degrees
    /// `weighted_degrees` and exact normalized-Laplacian spectral bounds
    /// `mu2`, `mu_max` (from the decomposition certificate).
    ///
    /// # Panics
    ///
    /// Panics if inputs are inconsistent (`mu2 ≤ 0`, `mu_max < mu2`,
    /// length mismatch) or any degree is non-positive — such clusters must
    /// be handled by the direct-edges path instead.
    pub fn new(vertices: Vec<VertexId>, weighted_degrees: &[f64], mu2: f64, mu_max: f64) -> Self {
        assert_eq!(vertices.len(), weighted_degrees.len(), "length mismatch");
        assert!(mu2 > 0.0, "cluster gap must be positive, got {mu2}");
        assert!(mu_max >= mu2, "mu_max {mu_max} below mu2 {mu2}");
        assert!(
            weighted_degrees.iter().all(|&d| d > 0.0),
            "gadget requires positive degrees"
        );
        let c = (mu2 * mu_max).sqrt();
        let star_weights = weighted_degrees.iter().map(|&d| c * d).collect();
        Self {
            vertices,
            alpha: (mu_max / mu2).sqrt(),
            star_weights,
        }
    }

    /// Number of star edges the gadget contributes.
    pub fn edge_count(&self) -> usize {
        self.vertices.len()
    }

    /// Appends the gadget's edges to `edges`, using `center` as the global
    /// id of the auxiliary star center.
    pub fn emit_edges(&self, center: usize, edges: &mut Vec<(usize, usize, f64)>) {
        for (&v, &w) in self.vertices.iter().zip(&self.star_weights) {
            edges.push((v, center, w));
        }
    }

    /// Dense Schur complement of the gadget onto the cluster vertices
    /// (local indexing aligned with `vertices`):
    /// `c·(diag(d) − d dᵀ/S)`. For tests and certification.
    pub fn schur_complement_dense(&self) -> DenseMatrix {
        let k = self.vertices.len();
        let s: f64 = self.star_weights.iter().sum();
        let mut m = DenseMatrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                let mut v = -self.star_weights[i] * self.star_weights[j] / s;
                if i == j {
                    v += self.star_weights[i];
                }
                m.set(i, j, v);
            }
        }
        m
    }
}

/// Intra-cluster weighted degrees for a vertex list (global ids) in `g`,
/// counting only edges with both endpoints inside the cluster.
pub(crate) fn intra_cluster_degrees(g: &Graph, vertices: &[VertexId]) -> Vec<f64> {
    let inside: std::collections::BTreeSet<VertexId> = vertices.iter().copied().collect();
    vertices
        .iter()
        .map(|&v| {
            g.adj(v)
                .iter()
                .filter(|&&(_, u)| inside.contains(&u))
                .map(|&(e, _)| g.edge(e).weight)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_linalg::{laplacian_from_edges, normalized_laplacian_dense, symmetric_eigen};

    /// The exact-identity check: Schur(star with weights c·d) equals
    /// c·(S diag(d) − d dᵀ)/S, and for c = 1, S = Σd this is the scaled
    /// product demand Laplacian L_{H(d)}/S.
    #[test]
    fn schur_complement_is_scaled_product_demand_laplacian() {
        let d = vec![2.0, 1.0, 3.0];
        let gadget = ClusterGadget::new(vec![0, 1, 2], &d, 1.0, 1.0); // c = 1
        let schur = gadget.schur_complement_dense();
        let s: f64 = d.iter().sum();
        // L_{H(d)} = S diag(d) − d dᵀ; expect schur == L_{H(d)}/S.
        for i in 0..3 {
            for j in 0..3 {
                let lh = if i == j {
                    s * d[i] - d[i] * d[i]
                } else {
                    -d[i] * d[j]
                };
                assert!(
                    (schur.get(i, j) - lh / s).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    schur.get(i, j),
                    lh / s
                );
            }
        }
    }

    /// Eliminating the star center from the explicit star Laplacian must
    /// reproduce `schur_complement_dense`.
    #[test]
    fn explicit_star_elimination_matches() {
        let d = vec![1.0, 2.0, 4.0, 0.5];
        let gadget = ClusterGadget::new(vec![0, 1, 2, 3], &d, 0.5, 1.5);
        let mut edges = Vec::new();
        gadget.emit_edges(4, &mut edges);
        let triples: Vec<(usize, usize, f64)> = edges.iter().map(|&(u, v, w)| (u, v, w)).collect();
        let full = laplacian_from_edges(5, &triples).to_dense();
        // Schur: A_oo − a a^T / s where a = column of center.
        let s = full.get(4, 4);
        let mut schur = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                schur.set(i, j, full.get(i, j) - full.get(i, 4) * full.get(j, 4) / s);
            }
        }
        let direct = gadget.schur_complement_dense();
        for i in 0..4 {
            for j in 0..4 {
                assert!((schur.get(i, j) - direct.get(i, j)).abs() < 1e-12);
            }
        }
    }

    /// The certified sandwich: for an expander cluster, with exact µ₂ and
    /// µ_max, all generalized eigenvalues of (L_G', Schur) lie in [1/α, α].
    #[test]
    fn certified_sandwich_holds_on_expander() {
        let g = generators::expander(16);
        let nl = normalized_laplacian_dense(16, &g.edge_triples());
        let eig = symmetric_eigen(&nl).unwrap();
        let mu2 = eig.eigenvalues()[1];
        let mu_max = *eig.eigenvalues().last().unwrap();
        let d = intra_cluster_degrees(&g, &(0..16).collect::<Vec<_>>());
        let gadget = ClusterGadget::new((0..16).collect(), &d, mu2, mu_max);
        let schur = gadget.schur_complement_dense();
        let lap = laplacian_from_edges(16, &g.edge_triples()).to_dense();
        // Check xᵀLx / xᵀSx ∈ [1/α, α] on a basis of range vectors.
        for probe in 0..16 {
            let mut x = vec![0.0; 16];
            x[probe] = 1.0;
            x[(probe + 7) % 16] = -1.0; // mean-zero probe
            let num = lap.quadratic_form(&x);
            let den = schur.quadratic_form(&x);
            let ratio = num / den;
            assert!(
                ratio >= 1.0 / gadget.alpha - 1e-9 && ratio <= gadget.alpha + 1e-9,
                "ratio {ratio} outside [{}, {}]",
                1.0 / gadget.alpha,
                gadget.alpha
            );
        }
    }

    #[test]
    fn intra_degrees_ignore_outside_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 5.0);
        g.add_edge(2, 3, 7.0);
        let d = intra_cluster_degrees(&g, &[0, 1, 2]);
        assert_eq!(d, vec![2.0, 7.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "positive degrees")]
    fn rejects_zero_degree() {
        let _ = ClusterGadget::new(vec![0, 1], &[1.0, 0.0], 1.0, 1.0);
    }
}
