//! # cc-sparsify — deterministic spectral sparsifiers in the congested clique
//!
//! Implements §3 of Forster & de Vos (PODC 2023): a deterministic
//! congested-clique construction of spectral sparsifiers (Theorem 3.3),
//! following the scheme of Chuzhoy–Gao–Li–Nanongkai–Peng–Saranurak
//! \[CGLN+20\]:
//!
//! 1. repeatedly compute an expander decomposition of the remaining edges
//!    ([`expander_decompose`], substituting the \[CS20\] black box with a
//!    deterministic recursive spectral partitioner whose per-cluster gap is
//!    *certified exactly* — see `DESIGN.md` §2.1);
//! 2. replace every cluster by a product-demand-graph proxy. Here the proxy
//!    is realized **exactly** as a weighted star with one auxiliary center
//!    vertex ([`ClusterGadget`]): the Schur complement of the star onto the
//!    cluster vertices *is* the scaled product demand graph, so no internal
//!    sparsification error is introduced at all (`DESIGN.md` §2.2);
//! 3. crossing edges fall through to the next level; small clusters keep
//!    their edges verbatim.
//!
//! The result is a [`SpectralSparsifier`]: `O(n log(nU))` gadget edges over
//! the original vertices plus auxiliary star centers, globally known to
//! every node, with a **certified** approximation factor `alpha` such that
//! `(1/α)·S_H ⪯ L_G ⪯ α·S_H` where `S_H` is the Schur complement of the
//! gadget graph onto the original vertices.
//!
//! ```
//! use cc_model::Clique;
//! use cc_graph::generators;
//! use cc_sparsify::{build_sparsifier, SparsifyParams};
//!
//! let g = generators::random_connected(24, 40, 4, 7);
//! let mut clique = Clique::new(24);
//! let h = build_sparsifier(&mut clique, &g, &SparsifyParams::default()).unwrap();
//! assert!(h.alpha() >= 1.0);
//! assert!(h.edge_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod certify;
mod decomposition;
mod error;
mod gadget;
mod randomized;
mod session;
mod sparsifier;
mod template;

pub use cache::{TemplateCache, TemplateKey};
pub use certify::{generalized_eigen_bounds, verify_sparsifier, CertifiedBounds};
pub use decomposition::{expander_decompose, Cluster, ExpanderDecomposition};
pub use error::SparsifyError;
pub use gadget::ClusterGadget;
pub use randomized::build_randomized_sparsifier;
pub use session::SparsifierSession;
pub use sparsifier::{
    build_sparsifier, SparsifierSolveScratch, SparsifierSolver, SparsifyParams, SpectralSparsifier,
};
pub use template::{build_sparsifier_with_template, SparsifierTemplate};
