//! Deterministic expander decomposition.
//!
//! Substitute for the \[CS20\] black box of Theorem 3.2 (see `DESIGN.md`
//! §2.1): a recursive spectral partitioner. For the current vertex set we
//! compute the exact second eigenpair of the weighted normalized Laplacian
//! with the dense symmetric eigensolver, try all sweep cuts of the exact
//! eigenvector, and split when the best sweep cut has weighted conductance
//! below `phi`; otherwise the cluster is final and — because the
//! eigenvector is exact — carries a *certificate* `µ₂ ≥ φ²/2 > 0` (we
//! record the exact `µ₂` and `µ_max`, which is strictly stronger than the
//! conductance guarantee the paper consumes downstream).

use cc_graph::{EdgeId, Graph, VertexId};
use cc_linalg::{normalized_laplacian_dense, symmetric_eigen, LinalgError};

/// A final cluster of the decomposition with its exact spectral certificate.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Global vertex ids of the cluster, ascending.
    pub vertices: Vec<VertexId>,
    /// Ids (in the decomposed graph) of the intra-cluster edges.
    pub edges: Vec<EdgeId>,
    /// Exact second-smallest eigenvalue of the cluster's weighted
    /// normalized Laplacian (`0` for single-vertex or edgeless clusters).
    pub mu2: f64,
    /// Exact largest eigenvalue of the same matrix (`0` if edgeless).
    pub mu_max: f64,
}

impl Cluster {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for a single-vertex cluster.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Result of [`expander_decompose`].
#[derive(Debug, Clone)]
pub struct ExpanderDecomposition {
    /// Final clusters; every vertex appears in exactly one.
    pub clusters: Vec<Cluster>,
    /// Ids of the edges crossing between clusters.
    pub crossing_edges: Vec<EdgeId>,
    /// The conductance threshold used.
    pub phi: f64,
}

impl ExpanderDecomposition {
    /// Human-readable summary: cluster count, size distribution, spectral
    /// gap range, crossing edges — what the `sparsifier_inspect` example
    /// prints.
    pub fn summary(&self) -> String {
        let sizes: Vec<usize> = self.clusters.iter().map(|c| c.len()).collect();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().min().unwrap_or(0);
        let gaps: Vec<f64> = self
            .clusters
            .iter()
            .filter(|c| !c.edges.is_empty())
            .map(|c| c.mu2)
            .collect();
        let gap_min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        let gap_max = gaps.iter().copied().fold(0.0f64, f64::max);
        format!(
            "{} clusters (sizes {min}..{max}), certified gaps µ2 ∈ [{:.4}, {:.4}], {} crossing edges (φ = {:.4})",
            self.clusters.len(),
            if gap_min.is_finite() { gap_min } else { 0.0 },
            gap_max,
            self.crossing_edges.len(),
            self.phi,
        )
    }

    /// Cluster id per vertex.
    pub fn assignment(&self, n: usize) -> Vec<usize> {
        let mut a = vec![usize::MAX; n];
        for (cid, cl) in self.clusters.iter().enumerate() {
            for &v in &cl.vertices {
                a[v] = cid;
            }
        }
        a
    }

    /// Total weight of crossing edges in `g`.
    pub fn crossing_weight(&self, g: &Graph) -> f64 {
        self.crossing_edges.iter().map(|&e| g.edge(e).weight).sum()
    }
}

/// The default conductance threshold `φ = 1/(8·ln(2 + vol(G)))`, chosen so
/// that (heuristically, and verified by the E2 experiment) each level of
/// the sparsifier construction drops at least half of the remaining edge
/// weight — the role `φ = 1/polylog` plays in \[CGLN+20\].
pub fn default_phi(g: &Graph) -> f64 {
    let vol = 2.0 * g.total_weight();
    1.0 / (8.0 * (2.0 + vol).ln())
}

/// Deterministic expander decomposition of `g` with conductance threshold
/// `phi`.
///
/// Guarantees:
/// * every final cluster with ≥ 2 vertices is connected and carries its
///   exact spectral gap `µ₂` (> 0);
/// * a cluster is only accepted when no sweep cut of its exact Fiedler
///   vector has weighted conductance below `phi`, which by the sweep-cut
///   (Cheeger) inequality certifies `µ₂ ≥ φ²/2`;
/// * crossing edges are exactly the edges whose endpoints lie in different
///   clusters.
///
/// Purely internal computation: the congested-clique round cost is charged
/// by the caller ([`crate::build_sparsifier`]) as an oracle phase per
/// Theorem 3.2's formula.
///
/// # Errors
///
/// Propagates a dense eigendecomposition failure (cannot happen for
/// finite positive weights).
///
/// # Panics
///
/// Panics if `phi` is not in `(0, 1)`.
pub fn expander_decompose(g: &Graph, phi: f64) -> Result<ExpanderDecomposition, LinalgError> {
    assert!(phi > 0.0 && phi < 1.0, "phi must be in (0,1), got {phi}");
    let mut clusters = Vec::new();
    // Process the worklist in waves: pieces of one wave are vertex-disjoint
    // and independent, so they fan out across cores (the dense eigensolve
    // per piece dominates the sparsifier build). Each piece's fate depends
    // only on its own vertex set — the recursion tree is independent of
    // processing order — and the cluster list is sorted below, so the
    // result is identical to the sequential worklist's.
    let mut pending: Vec<Vec<VertexId>> = split_components(g, &(0..g.n()).collect::<Vec<_>>());
    while !pending.is_empty() {
        let wave = std::mem::take(&mut pending);
        for outcome in cc_linalg::par::par_map(&wave, |piece| process_piece(g, piece, phi)) {
            match outcome? {
                PieceOutcome::Clusters(cs) => clusters.extend(cs),
                PieceOutcome::Split(pieces) => pending.extend(pieces),
            }
        }
    }
    clusters.sort_by(|a, b| a.vertices.cmp(&b.vertices));
    let n = g.n();
    let mut assignment = vec![usize::MAX; n];
    for (cid, cl) in clusters.iter().enumerate() {
        for &v in &cl.vertices {
            assignment[v] = cid;
        }
    }
    let mut crossing = Vec::new();
    for (id, e) in g.edges().iter().enumerate() {
        if assignment[e.u] != assignment[e.v] {
            crossing.push(id);
        }
    }
    Ok(ExpanderDecomposition {
        clusters,
        crossing_edges: crossing,
        phi,
    })
}

/// What became of one worklist piece.
enum PieceOutcome {
    /// Final clusters (≤ 2 vertices, edgeless singletons, or a certified
    /// expander).
    Clusters(Vec<Cluster>),
    /// The piece was cut (sweep cut or component split); recurse on these.
    Split(Vec<Vec<VertexId>>),
}

/// One step of the decomposition recursion, free of shared mutable state
/// so waves of pieces can run concurrently.
fn process_piece(g: &Graph, vertices: &[VertexId], phi: f64) -> Result<PieceOutcome, LinalgError> {
    if vertices.len() <= 2 {
        return Ok(PieceOutcome::Clusters(vec![finish_cluster(
            g,
            vertices.to_vec(),
        )]));
    }
    let (sub, map) = g.induced(vertices);
    if sub.m() == 0 {
        // Disconnected singletons (shouldn't happen after split) —
        // emit one cluster per vertex.
        return Ok(PieceOutcome::Clusters(
            vertices
                .iter()
                .map(|&v| finish_cluster(g, vec![v]))
                .collect(),
        ));
    }
    let nl = normalized_laplacian_dense(sub.n(), &sub.edge_triples());
    let eig = symmetric_eigen(&nl)?;
    let mu2 = eig.eigenvalues()[1];
    let mu_max = *eig
        .eigenvalues()
        .last()
        .expect("nonempty spectrum for nonempty cluster");
    if mu2 <= 1e-12 {
        // Disconnected: split by components (mapped back to global ids)
        // and retry.
        let comp = sub.components();
        let num = comp.iter().copied().max().map_or(0, |c| c + 1);
        let mut pieces = vec![Vec::new(); num];
        for (local, &c) in comp.iter().enumerate() {
            pieces[c].push(map[local]);
        }
        return Ok(PieceOutcome::Split(pieces));
    }
    // Sweep the exact Fiedler vector in the degree-weighted embedding.
    let fiedler = eig.eigenvector(1);
    Ok(match best_sweep_cut(&sub, &fiedler) {
        Some((cut_conductance, side)) if cut_conductance < phi => {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for (local, &global) in map.iter().enumerate() {
                if side[local] {
                    left.push(global);
                } else {
                    right.push(global);
                }
            }
            PieceOutcome::Split(vec![left, right])
        }
        _ => {
            // Certified expander: record exact spectral bounds.
            let mut cl = finish_cluster(g, vertices.to_vec());
            cl.mu2 = mu2;
            cl.mu_max = mu_max;
            PieceOutcome::Clusters(vec![cl])
        }
    })
}

/// Connected components of the subgraph induced on `vertices` (global ids),
/// returned as global id lists.
fn split_components(g: &Graph, vertices: &[VertexId]) -> Vec<Vec<VertexId>> {
    let (sub, map) = g.induced(vertices);
    let comp = sub.components();
    let num = comp.iter().copied().max().map_or(0, |c| c + 1);
    let mut out = vec![Vec::new(); num];
    for (local, &c) in comp.iter().enumerate() {
        out[c].push(map[local]);
    }
    out
}

fn finish_cluster(g: &Graph, mut vertices: Vec<VertexId>) -> Cluster {
    vertices.sort_unstable();
    let inside: std::collections::BTreeSet<VertexId> = vertices.iter().copied().collect();
    let mut edges = Vec::new();
    // Scan incident lists and dedupe by edge id (multigraphs have no
    // usable endpoint-order convention).
    let mut seen = std::collections::BTreeSet::new();
    for &v in &vertices {
        for &(eid, u) in g.adj(v) {
            if inside.contains(&u) && seen.insert(eid) {
                edges.push(eid);
            }
        }
    }
    edges.sort_unstable();
    let (mu2, mu_max) = if edges.is_empty() {
        (0.0, 0.0)
    } else {
        // Exact spectrum for the small direct cases (≤ 2 vertices) or
        // clusters accepted without certification; callers overwrite when a
        // certificate exists. For a 2-vertex weighted cluster the
        // normalized Laplacian spectrum is {0, 2}.
        (2.0, 2.0)
    };
    Cluster {
        vertices,
        edges,
        mu2,
        mu_max,
    }
}

/// Best sweep cut of `vector` on `sub`: vertices sorted by
/// `x_v / √(weighted deg)`, all prefix cuts evaluated by weighted
/// conductance. Returns `(conductance, side)` of the best prefix, or `None`
/// if the graph has < 2 vertices.
fn best_sweep_cut(sub: &Graph, vector: &[f64]) -> Option<(f64, Vec<bool>)> {
    let n = sub.n();
    if n < 2 {
        return None;
    }
    let wdeg: Vec<f64> = (0..n).map(|v| sub.weighted_degree(v)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let key: Vec<f64> = (0..n)
        .map(|v| {
            if wdeg[v] > 0.0 {
                vector[v] / wdeg[v].sqrt()
            } else {
                f64::INFINITY
            }
        })
        .collect();
    order.sort_by(|&a, &b| {
        key[a]
            .partial_cmp(&key[b])
            .expect("NaN sweep key")
            .then(a.cmp(&b))
    });
    let total_vol: f64 = wdeg.iter().sum();
    let mut in_prefix = vec![false; n];
    let mut vol_s = 0.0;
    let mut cut_w = 0.0;
    let mut best: Option<(f64, usize)> = None;
    for (k, &v) in order.iter().enumerate().take(n - 1) {
        in_prefix[v] = true;
        vol_s += wdeg[v];
        // Update crossing weight: edges from v to the other side gain, to
        // the prefix side lose.
        for &(eid, u) in sub.adj(v) {
            let w = sub.edge(eid).weight;
            if in_prefix[u] {
                cut_w -= w;
            } else {
                cut_w += w;
            }
        }
        let denom = vol_s.min(total_vol - vol_s);
        if denom <= 0.0 {
            continue;
        }
        let cond = cut_w / denom;
        if best.is_none_or(|(bc, _)| cond < bc) {
            best = Some((cond, k));
        }
    }
    let (cond, k) = best?;
    let mut side = vec![false; n];
    for &v in order.iter().take(k + 1) {
        side[v] = true;
    }
    Some((cond, side))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn barbell_splits_into_two_cliques() {
        let g = generators::barbell(6);
        let dec = expander_decompose(&g, 0.2).unwrap();
        assert_eq!(dec.clusters.len(), 2);
        assert_eq!(dec.crossing_edges.len(), 1);
        let mut sizes: Vec<usize> = dec.clusters.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![6, 6]);
        for cl in &dec.clusters {
            assert!(
                cl.mu2 > 0.2 * 0.2 / 2.0,
                "certificate µ2={} too small",
                cl.mu2
            );
        }
    }

    #[test]
    fn expander_stays_whole() {
        let g = generators::expander(32);
        let phi = default_phi(&g);
        let dec = expander_decompose(&g, phi).unwrap();
        assert_eq!(dec.clusters.len(), 1);
        assert!(dec.crossing_edges.is_empty());
        assert!(dec.clusters[0].mu2 > 0.0);
        assert!(dec.clusters[0].mu_max <= 2.0 + 1e-9);
    }

    #[test]
    fn disconnected_graph_splits_by_component() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        let dec = expander_decompose(&g, 0.1).unwrap();
        // {0,1,2}, {3,4}, {5}
        assert_eq!(dec.clusters.len(), 3);
        assert!(dec.crossing_edges.is_empty());
        let assignment = dec.assignment(6);
        assert_eq!(assignment[0], assignment[1]);
        assert_ne!(assignment[0], assignment[3]);
    }

    #[test]
    fn every_vertex_in_exactly_one_cluster() {
        let g = generators::random_connected(40, 60, 4, 3);
        let dec = expander_decompose(&g, default_phi(&g)).unwrap();
        let mut count = vec![0usize; 40];
        for cl in &dec.clusters {
            for &v in &cl.vertices {
                count[v] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn crossing_edges_cross_and_cluster_edges_do_not() {
        let g = generators::random_connected(30, 80, 2, 9);
        let dec = expander_decompose(&g, 0.3).unwrap();
        let assignment = dec.assignment(30);
        for &e in &dec.crossing_edges {
            let edge = g.edge(e);
            assert_ne!(assignment[edge.u], assignment[edge.v]);
        }
        for cl in &dec.clusters {
            for &e in &cl.edges {
                let edge = g.edge(e);
                assert_eq!(assignment[edge.u], assignment[edge.v]);
            }
        }
        // Edge partition: crossing + intra == m.
        let intra: usize = dec.clusters.iter().map(|c| c.edges.len()).sum();
        assert_eq!(intra + dec.crossing_edges.len(), g.m());
    }

    #[test]
    fn certificates_match_exhaustive_conductance_cheeger() {
        // On a small graph, certified µ2 must satisfy µ2 ≤ 2·Φ(G)
        // (Cheeger upper) for single-cluster outcomes.
        let g = generators::cycle(10);
        let dec = expander_decompose(&g, 0.01).unwrap();
        if dec.clusters.len() == 1 {
            let phi_exact = g.conductance_exact();
            assert!(dec.clusters[0].mu2 <= 2.0 * phi_exact + 1e-9);
        }
    }

    #[test]
    fn grid_decomposition_with_large_phi_cuts_something() {
        let g = generators::grid(6, 6);
        let dec = expander_decompose(&g, 0.45).unwrap();
        assert!(dec.clusters.len() > 1, "grid should not be a 0.45-expander");
    }

    #[test]
    #[should_panic(expected = "phi must be in")]
    fn rejects_bad_phi() {
        let g = generators::cycle(4);
        let _ = expander_decompose(&g, 1.5);
    }
}
