//! Typed errors of the sparsifier builders.

use std::fmt;

use cc_linalg::LinalgError;
use cc_model::ModelError;

/// Failure of a sparsifier construction.
///
/// Precondition violations (clique too small, out-of-range params) remain
/// panics; runtime failures — a communication substrate rejecting a
/// broadcast, or a dense factorization/eigendecomposition failing on
/// degenerate weights — surface here.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparsifyError {
    /// The communication substrate rejected a primitive call.
    Comm(ModelError),
    /// A dense factorization or eigendecomposition failed.
    Factorization(LinalgError),
}

impl fmt::Display for SparsifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparsifyError::Comm(e) => write!(f, "communication failure during sparsify: {e}"),
            SparsifyError::Factorization(e) => {
                write!(f, "dense linear algebra failure during sparsify: {e}")
            }
        }
    }
}

impl std::error::Error for SparsifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparsifyError::Comm(e) => Some(e),
            SparsifyError::Factorization(e) => Some(e),
        }
    }
}

impl From<ModelError> for SparsifyError {
    fn from(e: ModelError) -> Self {
        SparsifyError::Comm(e)
    }
}

impl From<LinalgError> for SparsifyError {
    fn from(e: LinalgError) -> Self {
        SparsifyError::Factorization(e)
    }
}
