//! The level-by-level deterministic spectral sparsifier of Theorem 3.3.

use cc_graph::Graph;
use cc_linalg::{laplacian_from_edges, GroundedCholesky, LinalgError, SolveScratch};
use cc_model::Communicator;

use crate::decomposition::{default_phi, expander_decompose};
use crate::error::SparsifyError;
use crate::gadget::{intra_cluster_degrees, ClusterGadget};

/// Tuning knobs of [`build_sparsifier`].
#[derive(Debug, Clone, Copy)]
pub struct SparsifyParams {
    /// Conductance threshold of the expander decomposition; `None` selects
    /// the default `1/(8·ln(2+vol))` (`default_phi`).
    pub phi: Option<f64>,
    /// The paper's trade-off parameter `r` (Theorem 3.3): the oracle round
    /// charge per decomposition level is `⌈2·n^{1/r²}⌉`. Default `2.0`.
    pub r: f64,
    /// Clusters whose intra-edge count is at most
    /// `direct_edge_slack + |cluster|` keep their edges verbatim (exact,
    /// `α = 1`) instead of a star gadget. Default `1`.
    pub direct_edge_slack: usize,
    /// Hard cap on decomposition levels; remaining edges are copied into
    /// the sparsifier verbatim once reached (unconditional correctness
    /// backstop). `None` selects `2·log₂(2+total weight) + 8`.
    pub max_levels: Option<usize>,
}

impl Default for SparsifyParams {
    fn default() -> Self {
        Self {
            phi: None,
            r: 2.0,
            direct_edge_slack: 1,
            max_levels: None,
        }
    }
}

/// A globally known spectral sparsifier over the original vertices plus
/// auxiliary star centers.
///
/// Let `M` be the Laplacian of [`SpectralSparsifier::edges`] on
/// `n + aux_count` vertices and `S_H` its Schur complement onto `0..n`.
/// The construction certifies `(1/α)·S_H ⪯ L_G ⪯ α·S_H` with
/// `α =` [`SpectralSparsifier::alpha`]. "A solve involving `L_H`"
/// (Corollary 2.3) is a solve with `M` at zero demand on the auxiliary
/// vertices — see [`SparsifierSolver`].
#[derive(Debug, Clone)]
pub struct SpectralSparsifier {
    n: usize,
    aux_count: usize,
    edges: Vec<(usize, usize, f64)>,
    alpha: f64,
    levels: usize,
}

impl SpectralSparsifier {
    /// Crate-internal constructor used by the alternative builders
    /// (randomized ablation).
    pub(crate) fn from_parts(
        n: usize,
        aux_count: usize,
        edges: Vec<(usize, usize, f64)>,
        alpha: f64,
        levels: usize,
    ) -> Self {
        assert!(alpha >= 1.0, "approximation factor must be >= 1");
        Self {
            n,
            aux_count,
            edges,
            alpha,
            levels,
        }
    }

    /// Number of original vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of auxiliary star-center vertices.
    pub fn aux_count(&self) -> usize {
        self.aux_count
    }

    /// Total vertices of the gadget graph (`n + aux_count`).
    pub fn total_vertices(&self) -> usize {
        self.n + self.aux_count
    }

    /// The gadget edges `(u, v, w)` over `0..total_vertices()`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Number of gadget edges — the size bound of Theorem 3.3.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Certified approximation factor `α ≥ 1`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Decomposition levels the construction used.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Chebyshev condition bound for preconditioning `L_G` by `α·S_H`:
    /// `L_G ⪯ α·S_H ⪯ α²·L_G`, i.e. `κ = α²` (proof of Corollary 2.3).
    pub fn kappa(&self) -> f64 {
        self.alpha * self.alpha
    }

    /// Builds the internal solver (factors the gadget Laplacian once).
    ///
    /// # Errors
    ///
    /// Propagates factorization failures (cannot happen for gadgets built
    /// by [`build_sparsifier`] unless weights over/underflowed).
    pub fn solver(&self) -> Result<SparsifierSolver, LinalgError> {
        let lap = laplacian_from_edges(self.total_vertices(), &self.edges);
        let chol = GroundedCholesky::new(&lap)?;
        Ok(SparsifierSolver { n: self.n, chol })
    }
}

/// Internal preconditioner solves with the sparsifier (free of rounds: the
/// sparsifier is known to every node).
///
/// [`SparsifierSolver::solve`] implements `b ↦ S_H† b` up to per-component
/// constant shifts (invisible in the `‖·‖_{L_G}` seminorm): it pads `b`
/// with zero demand at the auxiliary star centers, solves the gadget
/// Laplacian, and restricts to the original vertices.
#[derive(Debug, Clone)]
pub struct SparsifierSolver {
    n: usize,
    chol: GroundedCholesky,
}

impl SparsifierSolver {
    /// Applies the (pseudo-)inverse of the Schur complement `S_H` to `b`.
    ///
    /// Allocates per call; the per-iteration preconditioner path inside
    /// the Laplacian solver uses [`SparsifierSolver::solve_into`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the number of original vertices.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        let mut scratch = SparsifierSolveScratch::default();
        self.solve_into(b, &mut out, &mut scratch);
        out
    }

    /// Allocation-free variant of [`SparsifierSolver::solve`]: the padded
    /// right-hand side, full gadget solution, and factor scratch live in
    /// `scratch` (sized on first use). Bitwise identical to `solve`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `out.len()` differ from the number of
    /// original vertices.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], scratch: &mut SparsifierSolveScratch) {
        assert_eq!(
            b.len(),
            self.n,
            "rhs must have one entry per original vertex"
        );
        assert_eq!(
            out.len(),
            self.n,
            "output must have one entry per original vertex"
        );
        scratch.padded.resize(self.chol.n(), 0.0);
        scratch.full.resize(self.chol.n(), 0.0);
        scratch.padded[..self.n].copy_from_slice(b);
        scratch.padded[self.n..].fill(0.0);
        self.chol
            .solve_into(&scratch.padded, &mut scratch.full, &mut scratch.factor);
        out.copy_from_slice(&scratch.full[..self.n]);
    }

    /// Batched preconditioner solve over `k` interleaved right-hand
    /// sides (`bs[v*k + j]` is entry `v` of vector `j`): pads every
    /// column with zero demand at the auxiliary star centers, runs the
    /// batched gadget solve
    /// ([`cc_linalg::GroundedCholesky::solve_multi_into`] — the dense
    /// factor streams through the cache once per sweep for the whole
    /// batch), and restricts to the original vertices. This is the
    /// amortization of one sparsifier build across a batch of solves:
    /// column `j` of the result is bitwise identical to
    /// [`SparsifierSolver::solve_into`] on column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `bs.len()`/`out.len()` differ from `n·k`.
    pub fn solve_multi_into(
        &self,
        bs: &[f64],
        k: usize,
        out: &mut [f64],
        scratch: &mut SparsifierSolveScratch,
    ) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(
            bs.len(),
            self.n * k,
            "rhs batch must have k entries per original vertex"
        );
        assert_eq!(
            out.len(),
            self.n * k,
            "output batch must have k entries per original vertex"
        );
        let total = self.chol.n();
        scratch.padded.resize(total * k, 0.0);
        scratch.full.resize(total * k, 0.0);
        // Interleaved layout is vertex-major, and the auxiliary centers
        // are the vertices n..total — the batch rhs is a prefix.
        scratch.padded[..self.n * k].copy_from_slice(bs);
        scratch.padded[self.n * k..].fill(0.0);
        self.chol
            .solve_multi_into(&scratch.padded, k, &mut scratch.full, &mut scratch.factor);
        out.copy_from_slice(&scratch.full[..self.n * k]);
    }
}

/// Reusable buffers for [`SparsifierSolver::solve_into`].
#[derive(Debug, Clone, Default)]
pub struct SparsifierSolveScratch {
    padded: Vec<f64>,
    full: Vec<f64>,
    factor: SolveScratch,
}

/// Builds the deterministic spectral sparsifier of `g` in the congested
/// clique (Theorem 3.3), charging rounds to `clique`:
///
/// * per level: one oracle charge `⌈2·n^{1/r²}⌉` for the expander
///   decomposition (\[CS20\] substitute, tagged `Charged`) and 2
///   implemented broadcast rounds (cluster id + intra-cluster degree, one
///   word each), after which every node can reconstruct all star gadgets
///   internally;
/// * the resulting sparsifier is known to every node.
///
/// # Errors
///
/// [`SparsifyError::Comm`] if the communication substrate rejects a
/// broadcast (injected faults under a fault-injecting transport surface
/// here); [`SparsifyError::Factorization`] if a cluster
/// eigendecomposition fails.
///
/// # Panics
///
/// Panics if `clique.n() < g.n()` (every vertex needs a host processor) or
/// params are out of range.
pub fn build_sparsifier<C: Communicator>(
    clique: &mut C,
    g: &Graph,
    params: &SparsifyParams,
) -> Result<SpectralSparsifier, SparsifyError> {
    assert!(
        clique.n() >= g.n(),
        "clique has {} nodes but the graph needs {}",
        clique.n(),
        g.n()
    );
    assert!(params.r >= 1.0, "r must be >= 1");
    let n = g.n();
    let phi = params.phi.unwrap_or_else(|| default_phi(g));
    let max_levels = params
        .max_levels
        .unwrap_or_else(|| 2 * ((2.0 + g.total_weight()).log2().ceil() as usize) + 8);
    let gamma = 1.0 / (params.r * params.r);
    let oracle_rounds = (2.0 * (n as f64).powf(gamma)).ceil() as u64;

    clique.phase("sparsify", |clique| {
        let mut remaining = g.clone();
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();
        let mut aux_count = 0usize;
        let mut alpha: f64 = 1.0;
        let mut levels = 0usize;
        while remaining.m() > 0 {
            if levels >= max_levels {
                // Correctness backstop: copy the leftovers verbatim.
                for e in remaining.edges() {
                    edges.push((e.u, e.v, e.weight));
                }
                break;
            }
            levels += 1;
            // [CS20] substitute — charged oracle cost per Theorem 3.2.
            clique.charge_oracle(oracle_rounds);
            let dec = expander_decompose(&remaining, phi)?;
            // Every node broadcasts (cluster id, intra-cluster weighted
            // degree): 2 one-word broadcast rounds; afterwards the gadget
            // construction below is internal at every node.
            let assignment = dec.assignment(n);
            clique.broadcast_all(
                &(0..clique.n())
                    .map(|v| {
                        if v < n {
                            assignment[v] as u64
                        } else {
                            u64::MAX
                        }
                    })
                    .collect::<Vec<_>>(),
            )?;
            clique.broadcast_all(&vec![0u64; clique.n()])?;
            // Per-cluster work (degree sums, gadget spectra) is mutually
            // independent, so fan it out; emission below stays sequential
            // in cluster order, which keeps edge order, center ids, and
            // the alpha fold identical to the serial loop.
            enum ClusterWork {
                Skip,
                Direct(Vec<(usize, usize, f64)>),
                Gadget(ClusterGadget),
            }
            let work = cc_linalg::par::par_map(&dec.clusters, |cluster| {
                if cluster.edges.is_empty() {
                    ClusterWork::Skip
                } else if cluster.edges.len() <= cluster.len() + params.direct_edge_slack {
                    // Keeping the edges verbatim is exact and no larger
                    // than a gadget.
                    ClusterWork::Direct(
                        cluster
                            .edges
                            .iter()
                            .map(|&eid| {
                                let e = remaining.edge(eid);
                                (e.u, e.v, e.weight)
                            })
                            .collect(),
                    )
                } else {
                    let degrees = intra_cluster_degrees(&remaining, &cluster.vertices);
                    ClusterWork::Gadget(ClusterGadget::new(
                        cluster.vertices.clone(),
                        &degrees,
                        cluster.mu2,
                        cluster.mu_max,
                    ))
                }
            });
            for item in work {
                match item {
                    ClusterWork::Skip => {}
                    ClusterWork::Direct(cluster_edges) => edges.extend(cluster_edges),
                    ClusterWork::Gadget(gadget) => {
                        let center = n + aux_count;
                        aux_count += 1;
                        gadget.emit_edges(center, &mut edges);
                        alpha = alpha.max(gadget.alpha);
                    }
                }
            }
            // Crossing edges fall through to the next level.
            let crossing: std::collections::BTreeSet<usize> =
                dec.crossing_edges.iter().copied().collect();
            remaining = remaining.edge_subgraph(|e| crossing.contains(&e));
        }
        Ok(SpectralSparsifier {
            n,
            aux_count,
            edges,
            alpha,
            levels,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;

    fn build(g: &Graph) -> (SpectralSparsifier, Clique) {
        let mut clique = Clique::new(g.n().max(2));
        let h =
            build_sparsifier(&mut clique, g, &SparsifyParams::default()).expect("honest clique");
        (h, clique)
    }

    #[test]
    fn sparsifier_of_expander_is_one_gadget() {
        let g = generators::expander(32);
        let (h, _) = build(&g);
        assert_eq!(h.levels(), 1);
        assert_eq!(h.aux_count(), 1);
        assert_eq!(h.edge_count(), 32);
        assert!(h.alpha() >= 1.0);
    }

    #[test]
    fn sparsifier_is_sparse_on_dense_graphs() {
        let g = generators::complete(40);
        let (h, _) = build(&g);
        // K40 has 780 edges; the sparsifier should be far smaller.
        assert!(h.edge_count() < 200, "got {}", h.edge_count());
    }

    #[test]
    fn small_clusters_keep_edges_exactly() {
        let g = generators::path(6);
        let (h, _) = build(&g);
        // A path decomposes into tiny clusters whose edges are kept; the
        // sparsifier over original vertices only.
        assert!(h.alpha() >= 1.0);
        let total_w: f64 = h.edges().iter().map(|e| e.2).sum();
        assert!(total_w > 0.0);
    }

    #[test]
    fn rounds_are_charged_per_level() {
        let g = generators::random_connected(24, 60, 4, 5);
        let (h, clique) = build(&g);
        let ledger = clique.ledger();
        assert!(ledger.charged_rounds() > 0, "oracle phases must be charged");
        assert!(ledger.implemented_rounds() >= 2 * h.levels() as u64);
        assert_eq!(ledger.phase_prefix_total("sparsify"), ledger.total_rounds());
    }

    #[test]
    fn solver_inverts_the_schur_complement_on_mean_zero_rhs() {
        let g = generators::expander(16);
        let (h, _) = build(&g);
        let solver = h.solver().unwrap();
        let mut b = vec![0.0; 16];
        b[0] = 1.0;
        b[15] = -1.0;
        let x = solver.solve(&b);
        assert_eq!(x.len(), 16);
        // S_H x must reproduce b exactly (b is mean-zero, G connected).
        let schur = crate::certify::sparsifier_schur_dense(&h);
        let sx = schur.matvec(&x);
        for (got, want) in sx.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        let x2 = solver.solve(&b);
        assert_eq!(x, x2, "solver must be deterministic");
    }

    #[test]
    fn deterministic_across_runs() {
        let g = generators::random_connected(20, 50, 8, 11);
        let (h1, c1) = build(&g);
        let (h2, c2) = build(&g);
        assert_eq!(h1.edges(), h2.edges());
        assert_eq!(h1.alpha().to_bits(), h2.alpha().to_bits());
        assert_eq!(c1.ledger().total_rounds(), c2.ledger().total_rounds());
    }

    #[test]
    fn weighted_graphs_are_handled() {
        let g = generators::random_connected(24, 60, 64, 2);
        let (h, _) = build(&g);
        assert!(h.alpha() >= 1.0);
        assert!(h.edge_count() > 0);
        assert!(h.solver().is_ok());
    }

    #[test]
    fn level_cap_backstop_keeps_edges() {
        let g = generators::random_connected(16, 40, 2, 3);
        let mut clique = Clique::new(16);
        let params = SparsifyParams {
            max_levels: Some(0),
            ..Default::default()
        };
        let h = build_sparsifier(&mut clique, &g, &params).unwrap();
        // With zero levels allowed, the sparsifier is the graph itself.
        assert_eq!(h.edge_count(), g.m());
        assert_eq!(h.aux_count(), 0);
        assert_eq!(h.alpha(), 1.0);
    }
}
