//! Exact certification of sparsifier quality on small instances.
//!
//! The construction already carries a certified `α`; this module provides
//! the *independent* dense verification used by tests and by the E2
//! experiment: compute the Schur complement `S_H` of the gadget graph onto
//! the original vertices, then the extreme generalized eigenvalues of the
//! pencil `(L_G, S_H)` restricted to `range(L_G)`, and check they lie in
//! `[1/α, α]`.

use cc_graph::Graph;
use cc_linalg::{laplacian_from_edges, symmetric_eigen, DenseMatrix, LinalgError};

use crate::SpectralSparsifier;

/// Extreme generalized eigenvalues of `(A, B)` on the common range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifiedBounds {
    /// Smallest generalized eigenvalue `min xᵀAx / xᵀBx` over `range(B)∖{0}`.
    pub min: f64,
    /// Largest generalized eigenvalue.
    pub max: f64,
}

impl CertifiedBounds {
    /// The tightest `α` with `(1/α)B ⪯ A ⪯ αB` given these bounds
    /// (`∞` if the pencil is not sandwiched at all).
    pub fn alpha(&self) -> f64 {
        if self.min <= 0.0 {
            return f64::INFINITY;
        }
        self.max.max(1.0 / self.min)
    }
}

/// Dense Schur complement of the sparsifier's gadget graph onto the
/// original vertices: `S = A_oo − Σ_c w_c w_cᵀ / s_c`, exploiting that star
/// centers are pairwise non-adjacent (diagonal aux–aux block).
pub fn sparsifier_schur_dense(h: &SpectralSparsifier) -> DenseMatrix {
    let n = h.n();
    let total = h.total_vertices();
    let mut a_oo = DenseMatrix::zeros(n, n);
    // Per-center accumulated star weights.
    let mut center_weights: Vec<Vec<(usize, f64)>> = vec![Vec::new(); h.aux_count()];
    for &(u, v, w) in h.edges() {
        let (u_aux, v_aux) = (u >= n, v >= n);
        assert!(u < total && v < total, "gadget edge out of range");
        match (u_aux, v_aux) {
            (false, false) => {
                a_oo.add_to(u, u, w);
                a_oo.add_to(v, v, w);
                a_oo.add_to(u, v, -w);
                a_oo.add_to(v, u, -w);
            }
            (false, true) => {
                a_oo.add_to(u, u, w);
                center_weights[v - n].push((u, w));
            }
            (true, false) => {
                a_oo.add_to(v, v, w);
                center_weights[u - n].push((v, w));
            }
            (true, true) => panic!("star centers must not be adjacent"),
        }
    }
    for ws in &center_weights {
        let s: f64 = ws.iter().map(|&(_, w)| w).sum();
        if s <= 0.0 {
            continue;
        }
        for &(u, wu) in ws {
            for &(v, wv) in ws {
                a_oo.add_to(u, v, -wu * wv / s);
            }
        }
    }
    a_oo
}

/// Extreme generalized eigenvalues of the pencil `(L_A, B)` on `range(B)`,
/// where `L_A` is the Laplacian of `a_edges` on `n` vertices and `B` a
/// dense PSD matrix with the same nullspace.
///
/// Computed by eigendecomposing `B = V Λ Vᵀ`, forming
/// `C = Λ^{-1/2} Vᵀ L_A V Λ^{-1/2}` on the eigenvectors with `Λ > tol`,
/// and reading off `λ_min(C), λ_max(C)`.
///
/// # Errors
///
/// [`LinalgError`] if an eigendecomposition fails to converge on
/// degenerate input.
///
/// # Panics
///
/// Panics if shapes mismatch or `B` has no positive eigenvalues.
pub fn generalized_eigen_bounds(
    n: usize,
    a_edges: &[(usize, usize, f64)],
    b: &DenseMatrix,
) -> Result<CertifiedBounds, LinalgError> {
    assert_eq!(b.rows(), n, "B shape mismatch");
    let la = laplacian_from_edges(n, a_edges).to_dense();
    let eb = symmetric_eigen(b)?;
    let lam_max = eb.largest().unwrap_or(0.0);
    let tol = 1e-10 * lam_max.max(1e-300);
    let range_idx: Vec<usize> = (0..n).filter(|&j| eb.eigenvalues()[j] > tol).collect();
    assert!(!range_idx.is_empty(), "B has empty range");
    let k = range_idx.len();
    // W = V_range Λ_range^{-1/2}  (n × k)
    let mut w = DenseMatrix::zeros(n, k);
    for (col, &j) in range_idx.iter().enumerate() {
        let scale = 1.0 / eb.eigenvalues()[j].sqrt();
        for r in 0..n {
            w.set(r, col, eb.eigenvectors().get(r, j) * scale);
        }
    }
    let c = w
        .transpose()
        .matmul(&la.matmul(&w).expect("shape"))
        .expect("shape");
    let ec = symmetric_eigen(&c)?;
    Ok(CertifiedBounds {
        min: ec.eigenvalues()[0],
        max: *ec.eigenvalues().last().expect("nonempty range"),
    })
}

/// Independent verification that a sparsifier's certified `α` is honest:
/// computes the exact pencil bounds of `(L_G, S_H)` and returns them;
/// asserts nothing. The E2 experiment reports
/// `bounds.alpha() ≤ h.alpha() + tolerance`.
///
/// # Errors
///
/// [`LinalgError`] if the pencil eigendecomposition fails to converge.
pub fn verify_sparsifier(
    g: &Graph,
    h: &SpectralSparsifier,
) -> Result<CertifiedBounds, LinalgError> {
    let schur = sparsifier_schur_dense(h);
    generalized_eigen_bounds(g.n(), &g.edge_triples(), &schur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_sparsifier, SparsifyParams};
    use cc_graph::generators;
    use cc_model::Clique;

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n().max(2));
        let h = build_sparsifier(&mut clique, g, &SparsifyParams::default()).unwrap();
        let bounds = verify_sparsifier(g, &h).unwrap();
        assert!(
            bounds.alpha() <= h.alpha() * (1.0 + 1e-6),
            "claimed alpha {} but exact pencil alpha {} (bounds {:?})",
            h.alpha(),
            bounds.alpha(),
            bounds
        );
    }

    #[test]
    fn certified_alpha_is_honest_on_expander() {
        check(&generators::expander(24));
    }

    #[test]
    fn certified_alpha_is_honest_on_complete_graph() {
        check(&generators::complete(20));
    }

    #[test]
    fn certified_alpha_is_honest_on_barbell() {
        check(&generators::barbell(8));
    }

    #[test]
    fn certified_alpha_is_honest_on_random_graphs() {
        for seed in 0..4 {
            check(&generators::random_connected(18, 40, 6, seed));
        }
    }

    #[test]
    fn certified_alpha_is_honest_on_grid() {
        check(&generators::grid(5, 5));
    }

    #[test]
    fn identity_pencil_bounds_are_one() {
        let g = generators::cycle(8);
        let lg = cc_linalg::laplacian_from_edges(8, &g.edge_triples()).to_dense();
        let bounds = generalized_eigen_bounds(8, &g.edge_triples(), &lg).unwrap();
        assert!((bounds.min - 1.0).abs() < 1e-8);
        assert!((bounds.max - 1.0).abs() < 1e-8);
        assert!((bounds.alpha() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn alpha_of_degenerate_bounds_is_infinite() {
        let b = CertifiedBounds { min: 0.0, max: 2.0 };
        assert!(b.alpha().is_infinite());
    }
}
