//! Cross-instance sparsifier-template reuse.
//!
//! PR 3's `BarrierEngine` reuses one captured [`SparsifierTemplate`]
//! *within* a single IPM run (one engine, one edge support). Workloads
//! that solve many instances on the **same support** — repeated max-flow
//! queries on one network with different demands, parameter sweeps,
//! conformance soaks — still pay a full expander decomposition per run.
//! A [`TemplateCache`] closes that gap: a cheaply-cloneable, shared,
//! keyed store of frozen templates. Engines consult it before their
//! first build and publish what they capture; a hit replaces the
//! `n^{o(1)}`-round decomposition with a 2-broadcast-per-level
//! instantiation whose per-cluster `α` is recertified exactly for the
//! new weights (see [`SparsifierTemplate::instantiate`]), so correctness
//! never depends on the cache.
//!
//! Keys are structural: vertex count, edge count, and an FNV-1a hash of
//! the edge endpoint list in order. Templates only transfer between
//! graphs with the same edge support *and edge list order* — exactly
//! what the key fingerprints. Weights are deliberately excluded:
//! reweighted instances are the whole point.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::template::SparsifierTemplate;

/// Structural fingerprint of an edge support: `(n, m, h)` with `h` an
/// FNV-1a hash over the endpoint pairs in edge-list order. Weights do
/// not contribute — the template transfers across reweightings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TemplateKey {
    n: usize,
    m: usize,
    support_hash: u64,
}

impl TemplateKey {
    /// Fingerprints the support of a weighted edge list on `n` vertices.
    pub fn for_support(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for &(u, v, _) in edges {
            for word in [u as u64, v as u64] {
                h ^= word;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        Self {
            n,
            m: edges.len(),
            support_hash: h,
        }
    }

    /// Vertex count of the fingerprinted support.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge count of the fingerprinted support.
    pub fn m(&self) -> usize {
        self.m
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<TemplateKey, SparsifierTemplate>,
    hits: u64,
    misses: u64,
}

/// A shared, keyed store of frozen sparsifier templates. `Clone` is a
/// cheap handle clone (`Arc`): every clone sees and feeds the same
/// store, so one cache can serve many engines, adapters, or threads.
#[derive(Debug, Clone, Default)]
pub struct TemplateCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl TemplateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a template for `key`, counting a hit or miss.
    pub fn get(&self, key: &TemplateKey) -> Option<SparsifierTemplate> {
        let mut inner = self.inner.lock().expect("template cache poisoned");
        match inner.map.get(key).cloned() {
            Some(t) => {
                inner.hits += 1;
                Some(t)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Publishes a template for `key` (last writer wins — all templates
    /// for one key describe the same support, so any of them is valid).
    ///
    /// # Panics
    ///
    /// Panics if the template's vertex or edge count disagrees with the
    /// key — that would hand [`SparsifierTemplate::instantiate`] a graph
    /// it must reject.
    pub fn insert(&self, key: TemplateKey, template: SparsifierTemplate) {
        assert_eq!(template.n(), key.n, "template/key vertex count mismatch");
        assert_eq!(template.m(), key.m, "template/key edge count mismatch");
        let mut inner = self.inner.lock().expect("template cache poisoned");
        inner.map.insert(key, template);
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("template cache poisoned")
            .map
            .len()
    }

    /// True if no template has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a template.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("template cache poisoned").hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("template cache poisoned").misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsifier::SparsifyParams;
    use crate::template::build_sparsifier_with_template;
    use cc_graph::generators;
    use cc_model::Clique;

    fn edge_triples(g: &cc_graph::Graph) -> Vec<(usize, usize, f64)> {
        g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect()
    }

    #[test]
    fn key_ignores_weights_but_not_structure() {
        let a = TemplateKey::for_support(4, &[(0, 1, 1.0), (1, 2, 2.0)]);
        let b = TemplateKey::for_support(4, &[(0, 1, 7.5), (1, 2, 0.1)]);
        assert_eq!(a, b);
        let c = TemplateKey::for_support(4, &[(0, 1, 1.0), (1, 3, 2.0)]);
        assert_ne!(a, c);
        let d = TemplateKey::for_support(5, &[(0, 1, 1.0), (1, 2, 2.0)]);
        assert_ne!(a, d);
        // Edge list order is part of the support contract.
        let e = TemplateKey::for_support(4, &[(1, 2, 2.0), (0, 1, 1.0)]);
        assert_ne!(a, e);
    }

    #[test]
    fn cache_round_trips_templates_and_counts() {
        let g = generators::random_connected(24, 80, 3, 9);
        let mut clique = Clique::new(24);
        let (_, template) =
            build_sparsifier_with_template(&mut clique, &g, &SparsifyParams::default()).unwrap();
        let cache = TemplateCache::new();
        let key = TemplateKey::for_support(g.n(), &edge_triples(&g));
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(key, template);
        assert_eq!(cache.len(), 1);
        let shared = cache.clone(); // handle clone: same store
        let got = shared.get(&key).expect("published template");
        assert_eq!(got.n(), g.n());
        assert_eq!(got.m(), g.m());
        assert_eq!(cache.hits(), 1);
        // The cached template instantiates on a reweighted instance.
        let mut g2 = cc_graph::Graph::new(g.n());
        for e in g.edges() {
            g2.add_edge(e.u, e.v, e.weight * 2.0);
        }
        let h = got.instantiate(&mut clique, &g2).unwrap();
        assert!(h.alpha() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "vertex count mismatch")]
    fn insert_rejects_mismatched_key() {
        let g = generators::cycle(8);
        let mut clique = Clique::new(8);
        let (_, template) =
            build_sparsifier_with_template(&mut clique, &g, &SparsifyParams::default()).unwrap();
        let cache = TemplateCache::new();
        let wrong = TemplateKey::for_support(9, &edge_triples(&g));
        cache.insert(wrong, template);
    }
}
