//! Randomized effective-resistance sparsification — the ablation the
//! paper points to when it remarks that replacing the deterministic
//! solver by "a simpler, randomized solver (see \[FV22\])" converts the
//! `n^{o(1)}` factors into `poly log n`.
//!
//! Classic Spielman–Srivastava sampling: edge `e` is kept with
//! probability proportional to its leverage score `w_e · R_eff(e)`; the
//! exact effective resistances are computed internally (the model's free
//! local computation — in \[FV22\] this is a randomized
//! `O(polylog n)`-round construction, charged here as an oracle). The
//! returned sparsifier carries an **exactly certified** `α` from the dense
//! generalized-eigenvalue pencil — unlike the deterministic builder, the
//! α here is a posteriori (sampling has a failure probability; the
//! certificate makes the result trustworthy regardless).

use cc_graph::Graph;
use cc_linalg::{laplacian_from_edges, GroundedCholesky};
use cc_model::Communicator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::certify::{generalized_eigen_bounds, sparsifier_schur_dense};
use crate::error::SparsifyError;
use crate::SpectralSparsifier;

/// Builds a randomized spectral sparsifier of `g` with roughly
/// `target_edges` sampled edges (default `8·n·ln n`), certified exactly.
///
/// Rounds charged: `⌈(log₂ n)³⌉` oracle rounds (the \[FV22\] polylog
/// claim) plus 1 implemented broadcast (publishing the sample).
///
/// # Errors
///
/// [`SparsifyError::Comm`] on substrate failure;
/// [`SparsifyError::Factorization`] if the exact-resistance factorization
/// fails.
///
/// # Panics
///
/// Panics if `clique.n() < g.n()` or the graph has no edges when
/// `target_edges > 0`.
pub fn build_randomized_sparsifier<C: Communicator>(
    clique: &mut C,
    g: &Graph,
    seed: u64,
    target_edges: Option<usize>,
) -> Result<SpectralSparsifier, SparsifyError> {
    assert!(clique.n() >= g.n(), "clique too small");
    let n = g.n();
    let q = target_edges
        .unwrap_or_else(|| (8.0 * n as f64 * (n.max(2) as f64).ln()).ceil() as usize)
        .max(1);

    clique.phase("sparsify_randomized", |clique| {
        let polylog = ((n.max(2) as f64).log2().powi(3)).ceil() as u64;
        clique.charge_oracle(polylog);

        if g.m() == 0 {
            return Ok(SpectralSparsifier::from_parts(n, 0, Vec::new(), 1.0, 1));
        }

        // Exact effective resistances via one grounded factorization.
        let triples = g.edge_triples();
        let lap = laplacian_from_edges(n, &triples);
        let chol = GroundedCholesky::new(&lap)?;
        let mut leverage = Vec::with_capacity(g.m());
        for e in g.edges() {
            let mut b = vec![0.0; n];
            b[e.u] = 1.0;
            b[e.v] = -1.0;
            let x = chol.solve(&b);
            let r_eff = (x[e.u] - x[e.v]).max(0.0);
            leverage.push((e.weight * r_eff).max(1e-15));
        }
        let total: f64 = leverage.iter().sum();

        // Sample q edges with replacement, weight w_e/(q·p_e) each;
        // accumulate duplicates.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accum: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for _ in 0..q {
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = g.m() - 1;
            for (i, &l) in leverage.iter().enumerate() {
                if pick < l {
                    chosen = i;
                    break;
                }
                pick -= l;
            }
            let p = leverage[chosen] / total;
            *accum.entry(chosen).or_insert(0.0) += g.edge(chosen).weight / (q as f64 * p);
        }
        let edges: Vec<(usize, usize, f64)> = accum
            .into_iter()
            .map(|(i, w)| {
                let e = g.edge(i);
                (e.u, e.v, w)
            })
            .collect();

        // Publish the sample (one balanced all-gather of ≤ 3 words/edge).
        let words: u64 = 3 * edges.len() as u64;
        let per_node = words.div_ceil(clique.n() as u64);
        for _ in 0..per_node.max(1) {
            clique.broadcast_all(&vec![0u64; clique.n()])?;
        }

        // A-posteriori exact certification (dense pencil; the sampled
        // graph might miss connectivity — α = ∞ then, reported honestly
        // as a very large finite cap for downstream κ computations).
        let candidate = SpectralSparsifier::from_parts(n, 0, edges, 1.0, 1);
        let schur = sparsifier_schur_dense(&candidate);
        let bounds = generalized_eigen_bounds(n, &triples, &schur).map_err(SparsifyError::from)?;
        let alpha = if bounds.alpha().is_finite() {
            bounds.alpha().max(1.0)
        } else {
            1e9
        };
        Ok(SpectralSparsifier::from_parts(
            n,
            0,
            candidate.edges().to_vec(),
            alpha * (1.0 + 1e-9),
            1,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_sparsifier;
    use cc_graph::generators;
    use cc_model::Clique;

    #[test]
    fn randomized_sparsifier_is_certified_honestly() {
        let g = generators::random_connected(32, 200, 4, 5);
        let mut clique = Clique::new(32);
        let h = build_randomized_sparsifier(&mut clique, &g, 42, None).unwrap();
        let bounds = verify_sparsifier(&g, &h).unwrap();
        assert!(bounds.alpha() <= h.alpha() * (1.0 + 1e-6));
        assert!(
            h.alpha() < 100.0,
            "sampling should produce a decent sparsifier"
        );
    }

    #[test]
    fn randomized_sparsifier_is_smaller_than_dense_input() {
        let g = generators::complete(40);
        let mut clique = Clique::new(40);
        let h = build_randomized_sparsifier(&mut clique, &g, 7, Some(300)).unwrap();
        assert!(h.edge_count() <= 300);
        assert!(h.edge_count() < g.m());
        assert!(h.solver().is_ok());
    }

    #[test]
    fn rounds_are_polylog_charged() {
        let g = generators::expander(64);
        let mut clique = Clique::new(64);
        let _ = build_randomized_sparsifier(&mut clique, &g, 1, None).unwrap();
        let charged = clique.ledger().charged_rounds();
        assert_eq!(charged, (64f64.log2().powi(3)).ceil() as u64);
        assert!(clique.ledger().implemented_rounds() >= 1);
    }

    #[test]
    fn seeded_reproducibility() {
        let g = generators::random_connected(24, 100, 8, 3);
        let run = |seed| {
            let mut clique = Clique::new(24);
            build_randomized_sparsifier(&mut clique, &g, seed, None)
                .unwrap()
                .edges()
                .to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn solves_through_the_sampled_preconditioner() {
        // End-to-end: use the randomized sparsifier as a Chebyshev
        // preconditioner and verify the accuracy guarantee.
        let g = generators::random_connected(24, 120, 4, 8);
        let mut clique = Clique::new(24);
        let h = build_randomized_sparsifier(&mut clique, &g, 21, None).unwrap();
        let solver = h.solver().unwrap();
        let triples = g.edge_triples();
        let lap = laplacian_from_edges(24, &triples);
        let exact = GroundedCholesky::new(&lap).unwrap();
        let mut b = vec![0.0; 24];
        b[0] = 1.0;
        b[23] = -1.0;
        let alpha = h.alpha();
        // Allocation-free iteration path: same FP sequence as the
        // allocating wrapper, reused buffers across iterations.
        let iters = cc_linalg::chebyshev_iteration_bound(h.kappa(), 1e-8);
        let mut x = vec![0.0f64; 24];
        let mut ws = cc_linalg::ChebyshevWorkspace::new(24);
        let mut scratch = crate::SparsifierSolveScratch::default();
        cc_linalg::chebyshev_solve_fixed_into(
            |v, out| lap.matvec_into(v, out),
            |r, out| {
                solver.solve_into(r, out, &mut scratch);
                for zi in out.iter_mut() {
                    *zi /= alpha;
                }
            },
            &b,
            h.kappa(),
            iters,
            &mut x,
            &mut ws,
        );
        let x_star = exact.solve(&b);
        let err = cc_linalg::relative_a_error(
            |v| cc_linalg::laplacian_quadratic_form(&triples, v),
            &x,
            &x_star,
        );
        assert!(err <= 1e-8 * 1.05, "err={err}");
    }
}
