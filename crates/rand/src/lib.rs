//! Deterministic, dependency-free stand-in for the subset of the `rand`
//! 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny PRNG of its own. The generator is SplitMix64 — a
//! full-period 64-bit mixer with excellent statistical quality for test
//! and instance-generation workloads — seeded exactly like
//! `StdRng::seed_from_u64`. Sequences differ from upstream `rand` (which
//! is fine: every caller in this repo treats the stream as an opaque
//! deterministic source), but they are identical across runs, platforms
//! and thread counts, which is the property the deterministic congested
//! clique reproduction actually relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generator engines.
pub mod rngs {
    /// Deterministic SplitMix64 generator mirroring `rand::rngs::StdRng`'s
    /// role (a seedable, portable default engine).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that small consecutive seeds give unrelated streams.
        let mut rng = StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub(crate) fn next_f64(&mut self) -> f64 {
        // 53 uniform bits in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, bound)` without modulo bias (Lemire-style
    /// rejection on the widening multiply).
    #[inline]
    pub(crate) fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges a value can be uniformly sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "standard" distribution (for `rng.gen()`).
pub trait Standard: Sized {
    /// Draws a sample from the standard distribution.
    fn standard_sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard_sample(rng: &mut StdRng) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    #[inline]
    fn standard_sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn standard_sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
            let w = rng.gen_range(-4i64..=-1);
            assert!((-4..=-1).contains(&w));
        }
    }

    #[test]
    fn all_values_of_small_range_are_hit() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
