//! Sequential successive-shortest-paths minimum cost flow — the exactness
//! reference.

use cc_graph::DiGraph;

/// Computes an exact minimum cost flow for demand vector `sigma`
/// (`sigma[v] > 0` = `v` must ship `sigma[v]` units; `Σ sigma = 0`) on a
/// digraph whose capacities may be arbitrary (the Theorem 1.3 workloads
/// use unit capacities). Sequential successive shortest paths with
/// Bellman–Ford distances (costs may become negative in the residual
/// graph). Returns `None` if the demands cannot be routed.
///
/// # Panics
///
/// Panics if `sigma.len() != g.n()` or `Σ sigma != 0`.
pub fn ssp_min_cost_flow(g: &DiGraph, sigma: &[i64]) -> Option<(Vec<i64>, i64)> {
    assert_eq!(sigma.len(), g.n(), "demand length mismatch");
    assert_eq!(sigma.iter().sum::<i64>(), 0, "demands must balance");
    let n = g.n();
    let m = g.m();
    let mut flow = vec![0i64; m];
    let mut deficit: Vec<i64> = sigma.to_vec(); // positive: must send more

    loop {
        let sources: Vec<usize> = (0..n).filter(|&v| deficit[v] > 0).collect();
        if sources.is_empty() {
            break;
        }
        // Bellman–Ford from the set of sources over the residual graph.
        let mut dist = vec![i64::MAX / 4; n];
        let mut parent: Vec<Option<(usize, bool)>> = vec![None; n]; // (edge, forward)
        for &s in &sources {
            dist[s] = 0;
        }
        for _ in 0..n {
            let mut changed = false;
            for (i, e) in g.edges().iter().enumerate() {
                if flow[i] < e.capacity && dist[e.from] + e.cost < dist[e.to] {
                    dist[e.to] = dist[e.from] + e.cost;
                    parent[e.to] = Some((i, true));
                    changed = true;
                }
                if flow[i] > 0 && dist[e.to] - e.cost < dist[e.from] {
                    dist[e.from] = dist[e.to] - e.cost;
                    parent[e.from] = Some((i, false));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Cheapest reachable sink.
        let sink = (0..n)
            .filter(|&v| deficit[v] < 0 && dist[v] < i64::MAX / 8)
            .min_by_key(|&v| (dist[v], v))?;
        // Walk parents back to a source, collecting the path and bottleneck.
        let mut path: Vec<(usize, bool)> = Vec::new();
        let mut v = sink;
        let mut guard = 0;
        while deficit[v] <= 0 || dist[v] != 0 {
            let (i, fwd) = parent[v]?;
            path.push((i, fwd));
            v = if fwd { g.edge(i).from } else { g.edge(i).to };
            guard += 1;
            if guard > n + m {
                return None; // malformed parent chain (cannot happen)
            }
        }
        let source = v;
        let mut bottleneck = deficit[source].min(-deficit[sink]);
        for &(i, fwd) in &path {
            let e = g.edge(i);
            bottleneck = bottleneck.min(if fwd { e.capacity - flow[i] } else { flow[i] });
        }
        debug_assert!(bottleneck > 0);
        for &(i, fwd) in &path {
            if fwd {
                flow[i] += bottleneck;
            } else {
                flow[i] -= bottleneck;
            }
        }
        deficit[source] -= bottleneck;
        deficit[sink] += bottleneck;
    }
    let cost = g.flow_cost(&flow);
    Some((flow, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn picks_the_cheap_route() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(0, 2, 1, 5);
        g.add_edge(2, 3, 1, 5);
        let mut sigma = vec![0i64; 4];
        sigma[0] = 1;
        sigma[3] = -1;
        let (flow, cost) = ssp_min_cost_flow(&g, &sigma).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(flow, vec![1, 1, 0, 0]);
    }

    #[test]
    fn uses_both_routes_when_needed() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(0, 2, 1, 5);
        g.add_edge(2, 3, 1, 5);
        let mut sigma = vec![0i64; 4];
        sigma[0] = 2;
        sigma[3] = -2;
        let (flow, cost) = ssp_min_cost_flow(&g, &sigma).unwrap();
        assert_eq!(cost, 12);
        assert!(g.is_feasible_flow(&flow, &sigma));
    }

    #[test]
    fn infeasible_demand_returns_none() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 1)]);
        let mut sigma = vec![0i64; 3];
        sigma[0] = 1;
        sigma[2] = -1;
        assert!(ssp_min_cost_flow(&g, &sigma).is_none());
    }

    #[test]
    fn zero_demand_costs_nothing() {
        let g = generators::random_unit_digraph(8, 12, 5, 1);
        let (flow, cost) = ssp_min_cost_flow(&g, &[0; 8]).unwrap();
        assert_eq!(cost, 0);
        assert!(flow.iter().all(|&f| f == 0));
    }

    #[test]
    fn assignment_instances_are_solved_optimally() {
        // Compare against brute force on small assignment instances.
        for seed in 0..4 {
            let (g, sigma) = generators::bipartite_assignment(4, 2, 9, seed);
            let (flow, cost) = ssp_min_cost_flow(&g, &sigma).unwrap();
            assert!(g.is_feasible_flow(&flow, &sigma));
            // Brute force: try all ways to satisfy each worker with one
            // outgoing edge such that jobs get exactly one unit.
            let best = brute_force_assignment(&g, 4);
            assert_eq!(cost, best, "seed {seed}");
        }
    }

    fn brute_force_assignment(g: &DiGraph, k: usize) -> i64 {
        // Workers 0..k each pick one of their out-edges; each job exactly once.
        fn rec(g: &DiGraph, w: usize, k: usize, used: &mut Vec<bool>, acc: i64, best: &mut i64) {
            if w == k {
                *best = (*best).min(acc);
                return;
            }
            for &eid in g.out_edges(w) {
                let job = g.edge(eid).to - k;
                if !used[job] {
                    used[job] = true;
                    rec(g, w + 1, k, used, acc + g.edge(eid).cost, best);
                    used[job] = false;
                }
            }
        }
        let mut best = i64::MAX;
        let mut used = vec![false; k];
        rec(g, 0, k, &mut used, 0, &mut best);
        best
    }

    #[test]
    fn deterministic() {
        let (g, sigma) = generators::bipartite_assignment(6, 3, 20, 5);
        let a = ssp_min_cost_flow(&g, &sigma).unwrap();
        let b = ssp_min_cost_flow(&g, &sigma).unwrap();
        assert_eq!(a, b);
    }
}
