//! # cc-mcf — deterministic unit-capacity minimum cost flow in the congested clique
//!
//! Theorem 1.3 of Forster & de Vos (PODC 2023): on a directed graph with
//! unit capacities, integer costs `1..=W` and an integral demand vector
//! `σ` (`Σσ = 0`), compute an exact minimum cost flow in
//! `Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W))` congested clique rounds,
//! via the interior point method of Cohen–Mądry–Sankowski–Vladu
//! \[CMSV17\] (Appendix C of the paper) with every electrical step solved
//! by the deterministic Laplacian solver of Theorem 1.1.
//!
//! Pipeline ([`min_cost_flow_ipm`]):
//!
//! 1. **IPM**: log-barrier on the unit box `f_e ∈ (0,1)`
//!    starting from the analytic center `f = 1/2` (the role CMSV's
//!    bipartite lifting plays; see `DESIGN.md` §2.6), with `Progress`
//!    steps exactly in the Algorithm 9 mold — resistances `ν_e`-weighted,
//!    one electrical solve toward the remaining demand, `‖ρ‖_{ν,4}`-gated
//!    step, one electrical residue correction — and `Perturbation`-style
//!    `ν` doublings when `‖ρ‖_{ν,3}` exceeds the `c_ρ · m^{1/2−η}`
//!    threshold (Algorithm 6 line 7).
//! 2. **Rounding** (Algorithm 10 lines 1–6): snap to exact multiples of
//!    `Δ` against the *true* demands `σ` (spanning-forest correction),
//!    extend by a super source/sink, and run **cost-aware** Cohen rounding
//!    (Lemma 4.2) — the integral result satisfies `σ` exactly and costs no
//!    more than the fractional flow.
//! 3. **Repair**: route any remaining deficits along residual
//!    paths (APSP of `cc-apsp`), then cancel negative residual cycles
//!    until none remain — certifying **exact optimality** by Klein's
//!    theorem regardless of how well the IPM did.
//!
//! The sequential reference [`ssp_min_cost_flow`] (successive shortest
//! paths) is the ground truth in tests and the internal solver of the
//! trivial baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ipm;
mod repair;
mod session;
mod snap;
mod ssp;

pub use ipm::{min_cost_flow_ipm, McfOptions, McfOutcome, McfStats};
pub use repair::{cancel_negative_cycles, is_min_cost, route_deficits, McfError};
pub use session::McfSession;
pub use snap::snap_to_sigma_multiples;
pub use ssp::ssp_min_cost_flow;
