//! The CMSV interior point method core (Algorithms 6–9) in the congested
//! clique, plus the full Theorem 1.3 pipeline.
//!
//! Since the barrier-engine refactor (`DESIGN.md` §8) this module is a
//! thin *problem adapter*: it supplies the ν-weighted two-sided barrier
//! gradient on `f_e ∈ (0, 1)`, the `‖ρ‖_{ν,4}` step rule and the
//! rounding/repair hooks, while [`cc_ipm::BarrierEngine`] owns the
//! electrical builds (with sparsifier template reuse), the
//! allocation-free solve workspace and the per-stage [`EngineStats`].

use cc_apsp::RoundModel;
use cc_core::{ElectricalFlow, SolverOptions};
use cc_graph::DiGraph;
use cc_ipm::{BarrierEngine, EngineOptions, EngineStats, EDGE_CHUNK};
use cc_model::Communicator;
use cc_sparsify::TemplateCache;

use crate::repair::{cancel_negative_cycles, comm_rooted, route_deficits, McfError};
use crate::snap::snap_to_sigma_multiples;

/// Options of [`min_cost_flow_ipm`].
#[derive(Debug, Clone, Copy)]
pub struct McfOptions {
    /// Accuracy of every Laplacian solve (`Ω(1/poly m)`, \[CMSV17\]).
    pub solver_eps: f64,
    /// Progress-step budget; `None` selects the paper's `Õ(m^{3/7})`
    /// formula with constants suited to simulable sizes.
    pub max_progress_steps: Option<usize>,
    /// CMSV's `η` (Algorithm 7 line 13 sets `η = 1/14`); governs the
    /// perturbation threshold `c_ρ · m^{1/2−η}`.
    pub eta: f64,
    /// Round accounting of the repair phase's APSP calls.
    pub round_model: RoundModel,
    /// Laplacian solver (sparsifier) options.
    pub solver: SolverOptions,
    /// Reuse one expander decomposition across the IPM's electrical
    /// solves (fixed edge support; certificates recomputed per step).
    pub reuse_sparsifier: bool,
}

impl Default for McfOptions {
    fn default() -> Self {
        Self {
            solver_eps: 1e-10,
            max_progress_steps: None,
            eta: 1.0 / 14.0,
            round_model: RoundModel::FastMatMul,
            solver: SolverOptions {
                // The IPM never reads the exact reference solution; skip
                // its O(n³) factorization per electrical solve.
                skip_reference: true,
                ..SolverOptions::default()
            },
            reuse_sparsifier: true,
        }
    }
}

/// The engine-facing slice of [`McfOptions`].
fn engine_options(options: &McfOptions) -> EngineOptions {
    EngineOptions {
        solver_eps: options.solver_eps,
        solver: options.solver,
        reuse_sparsifier: options.reuse_sparsifier,
    }
}

/// Pipeline statistics — what the E7 experiment reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct McfStats {
    /// Progress steps executed (Algorithm 9 invocations).
    pub progress_steps: usize,
    /// Perturbation (`ν` doubling) steps executed.
    pub perturbation_steps: usize,
    /// Fraction of `‖σ‖₁` the fractional flow satisfied before rounding.
    pub ipm_progress: f64,
    /// True if the snap/rounding guard rejected the fractional flow.
    pub fell_back_to_zero: bool,
    /// Deficit-routing augmenting paths (Algorithm 10's `Õ(m^{3/7})` loop).
    pub repair_paths: usize,
    /// Negative cycles cancelled by the optimality backstop.
    pub cancelled_cycles: usize,
    /// Per-stage barrier-engine accounting (`progress` / `correction`
    /// solves, Chebyshev iterations, sparsifier builds vs template
    /// reuses, ledger rounds).
    pub engine: EngineStats,
}

/// Result of a distributed min cost flow computation.
#[derive(Debug, Clone)]
pub struct McfOutcome {
    /// Exact minimum cost flow, one value per edge.
    pub flow: Vec<i64>,
    /// Its cost.
    pub cost: i64,
    /// Pipeline statistics.
    pub stats: McfStats,
}

/// The paper's `Õ(m^{3/7} polylog W)` step budget with simulable constants.
pub fn default_step_budget(m: usize, max_cost: i64) -> usize {
    let m = m.max(2) as f64;
    let w = max_cost.max(1) as f64;
    let steps = 3.0 * m.powf(3.0 / 7.0) * (w + 2.0).ln();
    (steps.ceil() as usize).clamp(8, 600)
}

/// The ν-weighted two-sided barrier gradient
/// `r_e = ν_e (1/f² + 1/(1−f)²)`, one fixed chunk at a time. Handed to
/// [`BarrierEngine::resistances_into`]; every slot is a pure function of
/// its edge index, so the fan-out is bitwise thread-count independent.
fn fill_barrier(g: &DiGraph, f: &[f64], nu: &[f64], base: usize, out: &mut [(usize, usize, f64)]) {
    let edges = g.edges();
    for (j, slot) in out.iter_mut().enumerate() {
        let i = base + j;
        let e = &edges[i];
        let fe = f[i];
        let r = nu[i] * (1.0 / (fe * fe) + 1.0 / ((1.0 - fe) * (1.0 - fe)));
        *slot = (e.from, e.to, r.clamp(1e-12, 1e12));
    }
}

/// IPM core: log-barrier on `f_e ∈ (0, 1)` from the analytic center
/// `f = 1/2` (standing in for CMSV's bipartite lifting, `DESIGN.md` §2.6),
/// with Algorithm 9 progress steps and Algorithm 8-style perturbations.
/// Returns the fractional flow and statistics.
fn ipm_core<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    sigma: &[i64],
    options: &McfOptions,
    cache: Option<&TemplateCache>,
) -> Result<(Vec<f64>, McfStats), McfError> {
    let n = g.n();
    let m = g.m();
    let mut f = vec![0.5f64; m];
    let mut nu = vec![1.0f64; m]; // CMSV's ν weights
    let mut y = vec![0.0f64; n]; // duals
    let mut stats = McfStats::default();
    let mut engine: BarrierEngine<C> = BarrierEngine::new(n, engine_options(options));
    if let Some(cache) = cache {
        engine.set_template_cache(cache.clone());
    }
    let sigma_f: Vec<f64> = sigma.iter().map(|&s| s as f64).collect();
    let sigma_l1: f64 = sigma.iter().map(|&s| s.abs() as f64).sum();
    if m == 0 {
        return Ok((f, stats));
    }

    // Per-iteration buffers, sized once: the steady-state loop body's
    // solve path allocates nothing (see `crates/ipm/tests/alloc_free.rs`).
    let mut d = vec![0.0f64; n];
    let mut remaining: Vec<f64> = Vec::with_capacity(n);
    let mut residue: Vec<f64> = Vec::with_capacity(n);
    let mut electrical = ElectricalFlow::default();
    let mut correction = ElectricalFlow::default();

    let budget = options
        .max_progress_steps
        .unwrap_or_else(|| default_step_budget(m, g.max_abs_cost()));
    // Algorithm 7 line 13: c_ρ = 400·√3·log^{1/3} W — asymptotic; floor it
    // for simulable sizes so perturbation triggers on genuine concentration.
    let w = g.max_abs_cost().max(2) as f64;
    let c_rho = (400.0 * 3f64.sqrt() * w.ln().powf(1.0 / 3.0)) / 100.0;
    let rho_threshold = c_rho * (m as f64).powf(0.5 - options.eta);

    let net_out_into = |f: &[f64], d: &mut [f64]| {
        d.fill(0.0);
        for (i, e) in g.edges().iter().enumerate() {
            d[e.from] += f[i];
            d[e.to] -= f[i];
        }
    };

    clique.phase("mcf_ipm", |clique| -> Result<(), McfError> {
        for _step in 0..budget {
            // Remaining demand the electrical step must route
            // (Algorithm 9 line 2 solves L φ = σ̂ for the current target).
            net_out_into(&f, &mut d);
            remaining.clear();
            remaining.extend(sigma_f.iter().zip(&d).map(|(s, o)| s - o));
            let rem_norm: f64 = remaining.iter().map(|r| r.abs()).sum();
            if rem_norm < 1e-7 {
                break;
            }
            // Resistances r_e = ν_e (1/f² + 1/(1−f)²): CMSV's ν/f² barrier
            // extended two-sidedly for the explicit unit capacity.
            let min_gap = engine.resistances_into(
                m,
                |base, out| fill_barrier(g, &f, &nu, base, out),
                |i| {
                    let fe = f[i];
                    fe.min(1.0 - fe)
                },
            );
            if min_gap < 1e-7 {
                break;
            }
            let net = match engine.build_network(clique, "progress") {
                Ok(net) => net,
                // Comm-rooted failures (injected faults, congestion
                // rejections) must surface; numerical degradation hands
                // over to repair as before.
                Err(e) if comm_rooted(&e) => return Err(e.into()),
                Err(_) => break,
            };
            engine.flow_into(clique, "progress", &net, &remaining, &mut electrical)?;
            let f_tilde = &electrical.flows;

            // Congestion ρ_e = f̃_e / min(f, 1−f) with ν weights
            // (Algorithm 9 line 3); norms aggregated in one broadcast.
            let mut rho4 = 0.0f64;
            let mut rho3 = 0.0f64;
            let mut rho_inf = 0.0f64;
            for ((&fe, &fte), &ne) in f.iter().zip(f_tilde).zip(&nu) {
                let gap = fe.min(1.0 - fe);
                let rho = fte / gap;
                rho4 += ne * rho.abs().powi(4);
                rho3 += ne * rho.abs().powi(3);
                rho_inf = rho_inf.max(rho.abs());
            }
            let rho4 = rho4.powf(0.25);
            let rho3 = rho3.cbrt();
            engine.norm_roundtrip(clique)?;

            if rho3 > rho_threshold {
                // Perturbation (Algorithm 8): double ν on the congested
                // edges; duals shift with the slack (here: damping only —
                // the verdict-relevant effect is the ν reweighting).
                let mut worst: Vec<(usize, f64)> = f
                    .iter()
                    .zip(f_tilde)
                    .enumerate()
                    .map(|(i, (&fe, &fte))| (i, (fte / fe.min(1.0 - fe)).abs()))
                    .collect();
                worst.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
                let k = ((m as f64).powf(2.0 * options.eta).ceil() as usize).max(1);
                for &(i, _) in worst.iter().take(k) {
                    nu[i] *= 2.0;
                }
                stats.perturbation_steps += 1;
                engine.norm_roundtrip(clique)?;
            }

            // Step (Algorithm 9 line 4): δ = min(1/(8‖ρ‖_{ν,4}), 1/8),
            // additionally capped for hard feasibility.
            let delta = (1.0 / (8.0 * rho4.max(1e-12)))
                .min(0.125)
                .min(0.25 / rho_inf.max(1e-12));
            if delta < 1e-12 {
                break;
            }
            cc_linalg::par::par_chunks_mut(&mut f, EDGE_CHUNK, |ci, fs| {
                let base = ci * EDGE_CHUNK;
                for (j, fe) in fs.iter_mut().enumerate() {
                    *fe += delta * f_tilde[base + j];
                    *fe = fe.clamp(1e-9, 1.0 - 1e-9);
                }
            });
            for (yv, &pv) in y.iter_mut().zip(&electrical.potentials) {
                *yv += delta * pv;
            }

            // Residue correction (Algorithm 9 lines 7–10): a second
            // electrical solve re-targets the demands after the step.
            net_out_into(&f, &mut d);
            residue.clear();
            residue.extend(
                sigma_f
                    .iter()
                    .zip(&d)
                    .map(|(s, o)| (s - o) * delta.min(1.0)),
            );
            let res_norm: f64 = residue.iter().map(|r| r * r).sum::<f64>().sqrt();
            engine.record_residual("correction", res_norm);
            if res_norm > 1e-12 {
                engine.resistances_into(
                    m,
                    |base, out| fill_barrier(g, &f, &nu, base, out),
                    |_| f64::INFINITY, // gap unused on the correction build
                );
                let net2 = match engine.build_network(clique, "correction") {
                    Ok(net2) => Some(net2),
                    Err(e) if comm_rooted(&e) => return Err(e.into()),
                    Err(_) => None,
                };
                if let Some(net2) = net2 {
                    engine.flow_into(clique, "correction", &net2, &residue, &mut correction)?;
                    let mut scale = 1.0;
                    for _ in 0..40 {
                        let ok = f.iter().zip(&correction.flows).all(|(&fe, &ce)| {
                            let nf = fe + scale * ce;
                            nf > 1e-9 && nf < 1.0 - 1e-9
                        });
                        if ok {
                            for (fe, &ce) in f.iter_mut().zip(&correction.flows) {
                                *fe += scale * ce;
                            }
                            break;
                        }
                        scale *= 0.5;
                    }
                }
            }
            stats.progress_steps += 1;
        }

        net_out_into(&f, &mut d);
        let satisfied: f64 = sigma_f
            .iter()
            .zip(&d)
            .map(|(s, o)| s.abs() - (s - o).abs())
            .sum::<f64>()
            .max(0.0);
        stats.ipm_progress = if sigma_l1 > 0.0 {
            (satisfied / sigma_l1).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Ok(())
    })?;
    stats.engine = engine.into_stats();
    Ok((f, stats))
}

/// Exact deterministic unit-capacity minimum cost flow in the congested
/// clique (Theorem 1.3). See the crate docs for the pipeline.
///
/// # Errors
///
/// [`McfError::Infeasible`] if the demands cannot be routed;
/// [`McfError::BadDemands`] if `sigma` is malformed; [`McfError::Comm`] /
/// [`McfError::Solver`] / [`McfError::Rounding`] if the communication
/// substrate rejects a primitive call in the respective stage — injected
/// faults surface as typed errors, never as panics or silently wrong
/// flows.
///
/// # Panics
///
/// Panics if `clique.n()` is smaller than the extended graph needs
/// (`g.n() + 2` for the rounding super source/sink).
pub fn min_cost_flow_ipm<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    sigma: &[i64],
    options: &McfOptions,
) -> Result<McfOutcome, McfError> {
    min_cost_flow_ipm_inner(clique, g, sigma, options, None)
}

/// Shared implementation of [`min_cost_flow_ipm`] (no cache) and
/// [`crate::McfSession::min_cost_flow`] (session-owned
/// [`TemplateCache`]): with a cache, the IPM engine consults it before
/// its first sparsifier build and publishes what it captures, so
/// repeated solves on one edge support — demand sweeps, conformance
/// soaks — skip the expander decomposition after the first run.
/// Per-cluster certificates are recertified exactly per instantiation;
/// the optimal cost is identical with or without the cache.
pub(crate) fn min_cost_flow_ipm_inner<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    sigma: &[i64],
    options: &McfOptions,
    cache: Option<&TemplateCache>,
) -> Result<McfOutcome, McfError> {
    if sigma.len() != g.n() {
        return Err(McfError::BadDemands {
            reason: "length mismatch",
        });
    }
    if sigma.iter().sum::<i64>() != 0 {
        return Err(McfError::BadDemands {
            reason: "demands must sum to zero",
        });
    }
    assert!(
        clique.n() >= g.n() + 2,
        "clique needs {} nodes (graph + super source/sink)",
        g.n() + 2
    );
    clique.phase("mincostflow", |clique| {
        let (fractional, mut stats) = ipm_core(clique, g, sigma, options, cache)?;

        let k = ((2 * g.m().max(1)) as f64).log2().ceil() as u32;
        let delta = 1.0 / (1u64 << k.min(40)) as f64;

        let mut flow = vec![0i64; g.m()];
        if g.m() > 0 {
            if let Some(snapped) = snap_to_sigma_multiples(g, &fractional, sigma, delta) {
                // Extend with super source/sink so Cohen's rounding sees an
                // s-t flow (Algorithm 10 line 4); the integral terminal
                // arcs are never touched by the scaling iterations, so the
                // rounded flow satisfies σ exactly.
                let s_super = g.n();
                let t_super = g.n() + 1;
                let mut ext = DiGraph::new(g.n() + 2);
                for e in g.edges() {
                    ext.add_edge(e.from, e.to, e.capacity, e.cost);
                }
                let mut ext_flow = snapped.clone();
                for (v, &sv) in sigma.iter().enumerate() {
                    if sv > 0 {
                        ext.add_edge(s_super, v, sv, 0);
                        ext_flow.push(sv as f64);
                    } else if sv < 0 {
                        ext.add_edge(v, t_super, -sv, 0);
                        ext_flow.push(-sv as f64);
                    }
                }
                let rounded = cc_euler::round_flow(
                    clique,
                    &ext,
                    &ext_flow,
                    s_super,
                    t_super,
                    delta,
                    &cc_euler::FlowRoundingOptions { use_costs: true },
                )?;
                let candidate: Vec<i64> = rounded.flow[..g.m()].to_vec();
                if g.is_feasible_flow(&candidate, sigma) {
                    flow = candidate;
                } else {
                    stats.fell_back_to_zero = true;
                }
            } else {
                stats.fell_back_to_zero = true;
            }
        }

        // Repairing (Algorithm 10 lines 7–17): route remaining deficits…
        stats.repair_paths = route_deficits(clique, g, &mut flow, sigma, options.round_model)?;
        // …and certify optimality (negative-cycle backstop).
        stats.cancelled_cycles = cancel_negative_cycles(clique, g, &mut flow);
        let cost = g.flow_cost(&flow);
        Ok(McfOutcome { flow, cost, stats })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp_min_cost_flow;
    use cc_graph::generators;
    use cc_model::Clique;

    fn check_exact(g: &DiGraph, sigma: &[i64]) -> (McfOutcome, u64) {
        let (_, want) = ssp_min_cost_flow(g, sigma).expect("feasible instance");
        let mut clique = Clique::new(g.n() + 2);
        let out = min_cost_flow_ipm(&mut clique, g, sigma, &McfOptions::default()).unwrap();
        assert!(g.is_feasible_flow(&out.flow, sigma), "must satisfy demands");
        assert_eq!(out.cost, want, "must be minimum cost");
        (out, clique.ledger().total_rounds())
    }

    #[test]
    fn exact_on_two_route_instance() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(0, 2, 1, 5);
        g.add_edge(2, 3, 1, 5);
        let sigma = vec![1, 0, 0, -1];
        let (out, rounds) = check_exact(&g, &sigma);
        assert_eq!(out.cost, 2);
        assert!(rounds > 0);
    }

    #[test]
    fn exact_on_assignment_instances() {
        for seed in 0..3 {
            let (g, sigma) = generators::bipartite_assignment(5, 2, 9, seed);
            let (out, _) = check_exact(&g, &sigma);
            assert!(out.stats.progress_steps > 0, "IPM must run (seed {seed})");
        }
    }

    #[test]
    fn exact_on_random_unit_digraphs() {
        for seed in 0..3 {
            let g = generators::random_unit_digraph(8, 16, 7, seed);
            let mut sigma = vec![0i64; 8];
            sigma[0] = 1;
            sigma[7] = -1;
            check_exact(&g, &sigma);
        }
    }

    #[test]
    fn shared_cache_preserves_cost_and_skips_decompositions() {
        let (g, sigma) = generators::bipartite_assignment(5, 2, 9, 1);
        let (_, want) = ssp_min_cost_flow(&g, &sigma).expect("feasible instance");
        let session = crate::McfSession::new(McfOptions::default());
        let cache = session.cache().clone();
        let mut clique = Clique::new(g.n() + 2);
        let first = session.min_cost_flow(&mut clique, &g, &sigma).unwrap();
        assert_eq!(first.cost, want);
        assert_eq!(cache.len(), 1, "core engine publishes its support");
        assert_eq!(first.stats.engine.total_template_cache_hits(), 0);

        // Reversed demands, same support: the cached template carries over.
        let neg: Vec<i64> = sigma.iter().map(|&s| -s).collect();
        if ssp_min_cost_flow(&g, &neg).is_some() {
            let out = session.min_cost_flow(&mut clique, &g, &neg).unwrap();
            assert!(g.is_feasible_flow(&out.flow, &neg));
        }
        let second = session.min_cost_flow(&mut clique, &g, &sigma).unwrap();
        assert_eq!(second.cost, want, "cache must not change the optimum");
        assert!(
            second.stats.engine.total_template_cache_hits() >= 1,
            "second run must reuse the cached template: {}",
            second.stats.engine.to_json()
        );
        assert_eq!(second.stats.engine.stage("progress").builds, 0);
    }

    #[test]
    fn zero_demand_is_zero_flow() {
        let g = generators::random_unit_digraph(6, 10, 3, 4);
        let mut clique = Clique::new(8);
        let out = min_cost_flow_ipm(&mut clique, &g, &[0; 6], &McfOptions::default()).unwrap();
        assert_eq!(out.cost, 0);
        assert!(out.flow.iter().all(|&f| f == 0));
    }

    #[test]
    fn infeasible_instances_error() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 1)]);
        let mut clique = Clique::new(5);
        let err = min_cost_flow_ipm(&mut clique, &g, &[1, 0, -1], &McfOptions::default());
        assert_eq!(err.unwrap_err(), McfError::Infeasible);
    }

    #[test]
    fn bad_demands_rejected() {
        let g = DiGraph::from_capacities(2, &[(0, 1, 1)]);
        let mut clique = Clique::new(4);
        assert!(matches!(
            min_cost_flow_ipm(&mut clique, &g, &[1, 1], &McfOptions::default()),
            Err(McfError::BadDemands { .. })
        ));
    }

    #[test]
    fn deterministic_pipeline() {
        let (g, sigma) = generators::bipartite_assignment(4, 2, 8, 7);
        let run = || {
            let mut clique = Clique::new(g.n() + 2);
            let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
            (out.flow, out.cost, clique.ledger().total_rounds())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ledger_covers_all_phases() {
        let (g, sigma) = generators::bipartite_assignment(4, 2, 5, 2);
        let mut clique = Clique::new(g.n() + 2);
        let _ = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
        let phases = clique.ledger().phases();
        assert!(phases.keys().any(|k| k.contains("mcf_ipm")));
        // The deficit-routing phase only appears in the ledger when the
        // rounding left deficits; the cancellation backstop always runs.
        assert!(phases.keys().any(|k| k.contains("mcf_cycle_cancelling")));
    }

    #[test]
    fn multi_source_multi_sink_demands() {
        // Demands at four vertices simultaneously.
        let g = generators::random_unit_digraph(10, 40, 6, 11);
        let mut sigma = vec![0i64; 10];
        sigma[0] = 1;
        sigma[1] = 1;
        sigma[8] = -1;
        sigma[9] = -1;
        if let Some((_, want)) = ssp_min_cost_flow(&g, &sigma) {
            let mut clique = Clique::new(12);
            let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
            assert_eq!(out.cost, want);
            assert!(crate::is_min_cost(&g, &out.flow));
        }
    }

    #[test]
    fn budget_formula_shape() {
        assert!(default_step_budget(50, 4) <= default_step_budget(500, 4));
        assert!(default_step_budget(50, 4) <= default_step_budget(50, 1 << 20));
        assert!(default_step_budget(2, 1) >= 8);
    }

    #[test]
    fn sparsifier_reuse_preserves_exactness_and_saves_oracle_rounds() {
        // Twin of the maxflow reuse test: on random unit digraphs the
        // template-reusing engine must give the *bitwise identical*
        // outcome (flow vector, cost, progress steps) while charging
        // fewer oracle rounds than rebuilding the sparsifier every step.
        for seed in [3u64, 11] {
            let g = generators::random_unit_digraph(9, 24, 5, seed);
            let mut sigma = vec![0i64; 9];
            sigma[0] = 2;
            sigma[1] = -1;
            sigma[8] = -1;
            let run = |reuse: bool| {
                let mut clique = Clique::new(g.n() + 2);
                let out = min_cost_flow_ipm(
                    &mut clique,
                    &g,
                    &sigma,
                    &McfOptions {
                        reuse_sparsifier: reuse,
                        ..Default::default()
                    },
                )
                .unwrap();
                (
                    out.flow,
                    out.cost,
                    clique.ledger().charged_rounds(),
                    out.stats.progress_steps,
                )
            };
            let (flow_reuse, cost_reuse, charged_reuse, steps_reuse) = run(true);
            let (flow_fresh, cost_fresh, charged_fresh, steps_fresh) = run(false);
            assert_eq!(flow_reuse, flow_fresh, "seed {seed}: identical flows");
            assert_eq!(cost_reuse, cost_fresh, "seed {seed}: identical costs");
            assert_eq!(steps_reuse, steps_fresh, "seed {seed}: identical steps");
            assert!(steps_reuse > 0, "seed {seed}: IPM must run");
            // Reuse skips the per-step [CS20] oracle charges.
            assert!(
                charged_reuse < charged_fresh,
                "seed {seed}: reuse {charged_reuse} vs fresh {charged_fresh}"
            );
        }
    }

    #[test]
    fn engine_stats_cover_every_ipm_stage() {
        let (g, sigma) = generators::bipartite_assignment(4, 2, 8, 7);
        let mut clique = Clique::new(g.n() + 2);
        let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
        let progress = out.stats.engine.stage("progress");
        assert_eq!(progress.solves, out.stats.progress_steps);
        assert!(progress.builds >= 1, "first build captures the template");
        assert!(progress.chebyshev_iterations > 0);
        assert!(progress.rounds > 0);
        assert!(out.stats.engine.stage("correction").solves <= out.stats.progress_steps);
        assert!(out.stats.engine.total_rounds() <= clique.ledger().total_rounds());
    }
}
