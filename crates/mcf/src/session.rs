//! Reentrant min-cost-flow sessions over a shared sparsifier template
//! cache.
//!
//! [`min_cost_flow_ipm`](crate::min_cost_flow_ipm) is one-shot: each
//! call pays the full expander decomposition of its edge support. A
//! [`McfSession`] keeps a [`TemplateCache`] across calls, so repeated
//! solves on one support — demand sweeps, conformance soaks — skip the
//! decomposition after the first run. Per-cluster certificates are
//! recertified exactly per instantiation; the optimal cost is identical
//! with or without the cache. This is the session-based call path the
//! service layer (`DESIGN.md` §11) uses; it replaces the old
//! `min_cost_flow_ipm_with_cache` entry point.

use cc_graph::DiGraph;
use cc_model::Communicator;
use cc_sparsify::TemplateCache;

use crate::ipm::{min_cost_flow_ipm_inner, McfOptions, McfOutcome};
use crate::McfError;

/// A reentrant min-cost-flow session: fixed [`McfOptions`] plus a
/// [`TemplateCache`] every solve consults before its first sparsifier
/// build and publishes into. `Clone` shares the cache (handle clone).
#[derive(Debug, Clone, Default)]
pub struct McfSession {
    options: McfOptions,
    cache: TemplateCache,
}

impl McfSession {
    /// A session with a fresh private cache.
    pub fn new(options: McfOptions) -> Self {
        Self {
            options,
            cache: TemplateCache::new(),
        }
    }

    /// A session over an existing (possibly shared) cache.
    pub fn with_cache(options: McfOptions, cache: TemplateCache) -> Self {
        Self { options, cache }
    }

    /// The options every solve uses.
    pub fn options(&self) -> &McfOptions {
        &self.options
    }

    /// The backing cache (shared handle; hit/miss counters live here).
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// [`min_cost_flow_ipm`](crate::min_cost_flow_ipm) through the
    /// session's cache: the IPM engine consults the cache before its
    /// first sparsifier build and publishes what it captures. Cache reuse
    /// is observable in the outcome's
    /// [`EngineStats`](cc_ipm::EngineStats) (`template_cache_hits`).
    ///
    /// # Errors
    ///
    /// Same contract as [`min_cost_flow_ipm`](crate::min_cost_flow_ipm).
    ///
    /// # Panics
    ///
    /// Same contract as [`min_cost_flow_ipm`](crate::min_cost_flow_ipm).
    pub fn min_cost_flow<C: Communicator>(
        &self,
        clique: &mut C,
        g: &DiGraph,
        sigma: &[i64],
    ) -> Result<McfOutcome, McfError> {
        min_cost_flow_ipm_inner(clique, g, sigma, &self.options, Some(&self.cache))
    }
}
