//! Demand-targeted spanning-forest snap: the bridge between the IPM's
//! floating point flow and Cohen's rounding (Algorithm 10 lines 1–5).

use cc_graph::DiGraph;

/// Snaps `fractional` (approximate flow for demand `sigma`, entries in
/// `[0, capacity]`) to exact multiples of `delta` whose demands equal
/// `sigma` **exactly**: non-tree edges round to their nearest multiple, a
/// spanning forest absorbs all error. Returns `None` when the forest
/// correction leaves some edge outside `[0, capacity]` (the fractional
/// flow was too far from feasible) or a component's demands do not
/// balance.
///
/// # Panics
///
/// Panics if lengths mismatch or `delta ∉ (0, 1]`.
pub fn snap_to_sigma_multiples(
    g: &DiGraph,
    fractional: &[f64],
    sigma: &[i64],
    delta: f64,
) -> Option<Vec<f64>> {
    assert_eq!(fractional.len(), g.m(), "flow length mismatch");
    assert_eq!(sigma.len(), g.n(), "demand length mismatch");
    assert!(delta > 0.0 && delta <= 1.0, "delta out of range");
    let unit = (1.0 / delta).round() as i64;

    // Round every edge to its nearest multiple of Δ, then fix the demand
    // deficits by residual augmentation at the unit scale.
    let mut units: Vec<i64> = fractional
        .iter()
        .zip(g.edges())
        .map(|(&f, e)| ((f / delta).round() as i64).clamp(0, e.capacity * unit))
        .collect();
    let target: Vec<i64> = sigma.iter().map(|&s| s * unit).collect();
    if cc_graph::flow_util::fix_unit_deficits(g, &mut units, &target, unit) {
        Some(units.iter().map(|&u| u as f64 * delta).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp_min_cost_flow;
    use cc_graph::generators;

    #[test]
    fn snapping_a_noisy_exact_solution_recovers_demands() {
        let (g, sigma) = generators::bipartite_assignment(5, 2, 9, 3);
        let (opt, _) = ssp_min_cost_flow(&g, &sigma).unwrap();
        let noisy: Vec<f64> = opt
            .iter()
            .enumerate()
            .map(|(i, &f)| f as f64 + 5e-10 * ((i % 5) as f64 - 2.0))
            .collect();
        let snapped = snap_to_sigma_multiples(&g, &noisy, &sigma, 1.0 / 32.0)
            .expect("near-exact flow must snap");
        // Exact demand satisfaction.
        let as_int: Vec<i64> = snapped.iter().map(|&f| f.round() as i64).collect();
        assert!(snapped
            .iter()
            .zip(&as_int)
            .all(|(&f, &i)| (f - i as f64).abs() < 1e-9));
        assert!(g.is_feasible_flow(&as_int, &sigma));
    }

    #[test]
    fn infeasible_fractional_is_rejected() {
        // Demands cannot balance in the only component.
        let g = DiGraph::from_capacities(3, &[(0, 1, 1)]);
        let sigma = vec![1, 0, -1];
        assert!(snap_to_sigma_multiples(&g, &[0.5], &sigma, 0.5).is_none());
    }

    #[test]
    fn zero_demand_zero_flow() {
        let g = generators::random_unit_digraph(6, 10, 4, 2);
        let snapped = snap_to_sigma_multiples(&g, &vec![0.0; g.m()], &[0; 6], 0.25).unwrap();
        assert!(snapped.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn fractional_entries_stay_multiples_of_delta() {
        let (g, sigma) = generators::bipartite_assignment(4, 3, 5, 9);
        // A deliberately fractional starting point: 1/2 everywhere won't
        // satisfy σ, so either the snap fails (acceptable) or the result
        // is Δ-multiple feasible.
        let frac = vec![0.5; g.m()];
        if let Some(snapped) = snap_to_sigma_multiples(&g, &frac, &sigma, 0.25) {
            for &f in &snapped {
                let u = f / 0.25;
                assert!((u - u.round()).abs() < 1e-9);
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
