//! The Repairing phase (Algorithm 10): make the flow feasible for the
//! demands, then certify optimality by negative-cycle cancellation.

use std::error::Error;
use std::fmt;

use cc_apsp::{apsp_from_arcs, RoundModel};
use cc_euler::EulerError;
use cc_graph::DiGraph;
use cc_ipm::IpmError;
use cc_model::{Communicator, CostKind, ModelError};

/// Errors of the min cost flow pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum McfError {
    /// The demands cannot be routed in the network at all.
    Infeasible,
    /// The demand vector does not sum to zero or has the wrong length.
    BadDemands {
        /// Description of the violation.
        reason: &'static str,
    },
    /// The communication substrate rejected a primitive call.
    Comm(ModelError),
    /// An electrical solve inside the interior point method failed.
    Solver(IpmError),
    /// The flow-rounding stage (Lemma 4.2, `cc-euler`) failed.
    Rounding(EulerError),
}

impl fmt::Display for McfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McfError::Infeasible => write!(f, "demands cannot be routed in the network"),
            McfError::BadDemands { reason } => write!(f, "bad demand vector: {reason}"),
            McfError::Comm(e) => write!(f, "communication failure during min cost flow: {e}"),
            McfError::Solver(e) => {
                write!(f, "electrical solve failed during min cost flow: {e}")
            }
            McfError::Rounding(e) => write!(f, "flow rounding failed during min cost flow: {e}"),
        }
    }
}

impl Error for McfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            McfError::Comm(e) => Some(e),
            McfError::Solver(e) => Some(e),
            McfError::Rounding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for McfError {
    fn from(e: ModelError) -> Self {
        McfError::Comm(e)
    }
}

impl From<IpmError> for McfError {
    fn from(e: IpmError) -> Self {
        McfError::Solver(e)
    }
}

impl From<EulerError> for McfError {
    fn from(e: EulerError) -> Self {
        McfError::Rounding(e)
    }
}

/// True if `e`'s source chain bottoms out in a [`ModelError`] — a
/// communication fault rather than numerical degradation. The IPM
/// propagates comm-rooted build failures but degrades gracefully (hands
/// over to repair) on numerical ones.
pub(crate) fn comm_rooted(e: &(dyn Error + 'static)) -> bool {
    let mut cur: Option<&(dyn Error + 'static)> = Some(e);
    while let Some(s) = cur {
        if s.is::<ModelError>() {
            return true;
        }
        cur = s.source();
    }
    false
}

/// Routes the remaining deficits of `flow` with respect to `sigma` along
/// shortest (fewest-hop) residual paths until every demand is satisfied.
/// Each iteration is one algebraic APSP (`model` accounting) plus one
/// broadcast round.
///
/// Returns the number of augmenting paths, [`McfError::Infeasible`] if a
/// deficit cannot reach any sink, or [`McfError::Comm`] if the
/// communication substrate rejects an augmentation broadcast.
///
/// # Panics
///
/// Panics if lengths mismatch or the flow violates capacities.
pub fn route_deficits<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    flow: &mut [i64],
    sigma: &[i64],
    model: RoundModel,
) -> Result<usize, McfError> {
    assert_eq!(flow.len(), g.m(), "flow length mismatch");
    assert_eq!(sigma.len(), g.n(), "demand length mismatch");
    assert!(
        flow.iter()
            .zip(g.edges())
            .all(|(&f, e)| f >= 0 && f <= e.capacity),
        "flow violates capacities"
    );
    let n = g.n();
    let mut deficit = vec![0i64; n];
    for (v, &s) in sigma.iter().enumerate() {
        deficit[v] += s;
    }
    for (i, e) in g.edges().iter().enumerate() {
        deficit[e.from] -= flow[i];
        deficit[e.to] += flow[i];
    }

    clique.phase("mcf_repair_deficits", |clique| {
        let mut paths = 0usize;
        loop {
            let sources: Vec<usize> = (0..n).filter(|&v| deficit[v] > 0).collect();
            let sinks: Vec<usize> = (0..n).filter(|&v| deficit[v] < 0).collect();
            if sources.is_empty() && sinks.is_empty() {
                return Ok(paths);
            }
            if sources.is_empty() != sinks.is_empty() {
                return Err(McfError::BadDemands {
                    reason: "deficits do not balance",
                });
            }
            // Residual graph, unit lengths.
            let mut arcs = Vec::new();
            for (i, e) in g.edges().iter().enumerate() {
                if flow[i] < e.capacity {
                    arcs.push((e.from, e.to, 1));
                }
                if flow[i] > 0 {
                    arcs.push((e.to, e.from, 1));
                }
            }
            let apsp = apsp_from_arcs(clique, n, &arcs, model);
            // Deterministically pick the closest (source, sink) pair.
            let mut best: Option<(usize, usize, i64)> = None;
            for &s in &sources {
                if let Some((t, d)) = apsp.closest_target(s, &sinks) {
                    let better = match best {
                        None => true,
                        Some((bs, bt, bd)) => d < bd || (d == bd && (s, t) < (bs, bt)),
                    };
                    if better {
                        best = Some((s, t, d));
                    }
                }
            }
            let Some((s, t, _)) = best else {
                return Err(McfError::Infeasible);
            };
            let path = apsp.path(s, t).expect("distance implies path");
            let mut bottleneck = deficit[s].min(-deficit[t]);
            let mut steps: Vec<(usize, bool)> = Vec::new();
            for w in path.windows(2) {
                let (a, b) = (w[0], w[1]);
                let mut pick: Option<(usize, bool, i64)> = None;
                for (i, e) in g.edges().iter().enumerate() {
                    let cand = if e.from == a && e.to == b && flow[i] < e.capacity {
                        Some((i, true, e.capacity - flow[i]))
                    } else if e.to == a && e.from == b && flow[i] > 0 {
                        Some((i, false, flow[i]))
                    } else {
                        None
                    };
                    if let Some((i, fwd, res)) = cand {
                        let better = match pick {
                            None => true,
                            Some((pi, _, pres)) => res > pres || (res == pres && i < pi),
                        };
                        if better {
                            pick = Some((i, fwd, res));
                        }
                    }
                }
                let (i, fwd, res) = pick.expect("hop must be realizable");
                bottleneck = bottleneck.min(res);
                steps.push((i, fwd));
            }
            for (i, fwd) in steps {
                if fwd {
                    flow[i] += bottleneck;
                } else {
                    flow[i] -= bottleneck;
                }
            }
            deficit[s] -= bottleneck;
            deficit[t] += bottleneck;
            clique.broadcast_all(&vec![0u64; clique.n()])?;
            paths += 1;
        }
    })
}

/// Cancels negative-cost residual cycles until none remain, making `flow`
/// a **minimum**-cost flow for its demands (Klein's theorem). Detection is
/// Bellman–Ford; each detection is charged `n` implemented rounds (the
/// honest cost of distributed Bellman–Ford relaxations — the correctness
/// backstop runs once when the upstream pipeline already produced an
/// optimal flow; see crate docs).
///
/// Returns the number of cancelled cycles.
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn cancel_negative_cycles<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    flow: &mut [i64],
) -> usize {
    assert_eq!(flow.len(), g.m(), "flow length mismatch");
    let n = g.n();
    clique.phase("mcf_cycle_cancelling", |clique| {
        let mut cancelled = 0usize;
        loop {
            clique.ledger_mut().charge(n as u64, CostKind::Implemented);
            // Residual arcs with signed costs.
            let mut arcs: Vec<(usize, usize, i64, usize, bool)> = Vec::new();
            for (i, e) in g.edges().iter().enumerate() {
                if flow[i] < e.capacity {
                    arcs.push((e.from, e.to, e.cost, i, true));
                }
                if flow[i] > 0 {
                    arcs.push((e.to, e.from, -e.cost, i, false));
                }
            }
            // Bellman–Ford from a virtual super-source (dist 0 everywhere).
            let mut dist = vec![0i64; n];
            let mut parent: Vec<Option<usize>> = vec![None; n]; // arc index
            let mut updated_vertex = None;
            for round in 0..n {
                updated_vertex = None;
                for (ai, &(a, b, c, _, _)) in arcs.iter().enumerate() {
                    if dist[a] + c < dist[b] {
                        dist[b] = dist[a] + c;
                        parent[b] = Some(ai);
                        updated_vertex = Some(b);
                    }
                }
                if updated_vertex.is_none() {
                    break;
                }
                let _ = round;
            }
            let Some(start) = updated_vertex else {
                return cancelled; // no negative cycle
            };
            // Walk parents n times to land on the cycle, then extract it.
            let mut v = start;
            for _ in 0..n {
                let ai = parent[v].expect("relaxed vertex has a parent");
                v = arcs[ai].0;
            }
            let cycle_start = v;
            let mut cycle_arcs = Vec::new();
            let mut cur = cycle_start;
            loop {
                let ai = parent[cur].expect("cycle vertex has a parent");
                cycle_arcs.push(ai);
                cur = arcs[ai].0;
                if cur == cycle_start {
                    break;
                }
            }
            // Bottleneck and apply.
            let mut bottleneck = i64::MAX;
            for &ai in &cycle_arcs {
                let (_, _, _, i, fwd) = arcs[ai];
                let res = if fwd {
                    g.edge(i).capacity - flow[i]
                } else {
                    flow[i]
                };
                bottleneck = bottleneck.min(res);
            }
            debug_assert!(bottleneck > 0);
            let cycle_cost: i64 = cycle_arcs.iter().map(|&ai| arcs[ai].2).sum();
            debug_assert!(cycle_cost < 0, "extracted cycle must be negative");
            for &ai in &cycle_arcs {
                let (_, _, _, i, fwd) = arcs[ai];
                if fwd {
                    flow[i] += bottleneck;
                } else {
                    flow[i] -= bottleneck;
                }
            }
            cancelled += 1;
        }
    })
}

/// True iff `flow` is a **minimum**-cost flow for its own demands: the
/// residual graph contains no negative-cost cycle (Klein's optimality
/// criterion). Pure local computation over global knowledge — used as an
/// end-to-end certificate in tests and experiments.
///
/// # Panics
///
/// Panics if `flow` has the wrong length or violates capacities.
pub fn is_min_cost(g: &DiGraph, flow: &[i64]) -> bool {
    assert_eq!(flow.len(), g.m(), "flow length mismatch");
    let n = g.n();
    let mut arcs: Vec<(usize, usize, i64)> = Vec::new();
    for (i, e) in g.edges().iter().enumerate() {
        assert!(flow[i] >= 0 && flow[i] <= e.capacity, "capacity violated");
        if flow[i] < e.capacity {
            arcs.push((e.from, e.to, e.cost));
        }
        if flow[i] > 0 {
            arcs.push((e.to, e.from, -e.cost));
        }
    }
    // Bellman–Ford from an implicit super-source: any relaxation in the
    // n-th pass certifies a negative cycle.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for &(a, b, c) in &arcs {
            if dist[a] + c < dist[b] {
                dist[b] = dist[a] + c;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp_min_cost_flow;
    use cc_graph::generators;
    use cc_model::Clique;

    #[test]
    fn deficits_routed_from_zero_flow() {
        let (g, sigma) = generators::bipartite_assignment(5, 2, 7, 1);
        let mut flow = vec![0i64; g.m()];
        let mut clique = Clique::new(g.n());
        let paths =
            route_deficits(&mut clique, &g, &mut flow, &sigma, RoundModel::Semiring).unwrap();
        assert!(paths >= 1);
        assert!(g.is_feasible_flow(&flow, &sigma));
    }

    #[test]
    fn infeasible_demands_detected() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 1)]);
        let sigma = vec![1i64, 0, -1];
        let mut flow = vec![0i64];
        let mut clique = Clique::new(3);
        assert_eq!(
            route_deficits(&mut clique, &g, &mut flow, &sigma, RoundModel::Semiring),
            Err(McfError::Infeasible)
        );
    }

    #[test]
    fn is_min_cost_detects_suboptimal_flows() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2, 10);
        g.add_edge(0, 2, 2, 1);
        g.add_edge(2, 1, 2, 1);
        // Expensive route carries everything: suboptimal.
        assert!(!is_min_cost(&g, &[2, 0, 0]));
        // Cheap route: optimal.
        assert!(is_min_cost(&g, &[0, 2, 2]));
    }

    #[test]
    fn cycle_cancelling_reaches_ssp_optimum() {
        for seed in 0..5 {
            let (g, sigma) = generators::bipartite_assignment(5, 3, 9, seed);
            // Feasible but deliberately suboptimal start: route deficits by
            // hop count (ignores costs).
            let mut flow = vec![0i64; g.m()];
            let mut clique = Clique::new(g.n());
            route_deficits(&mut clique, &g, &mut flow, &sigma, RoundModel::Semiring).unwrap();
            let cancelled = cancel_negative_cycles(&mut clique, &g, &mut flow);
            let _ = cancelled;
            assert!(g.is_feasible_flow(&flow, &sigma));
            let (_, want) = ssp_min_cost_flow(&g, &sigma).unwrap();
            assert_eq!(g.flow_cost(&flow), want, "seed {seed}");
        }
    }

    #[test]
    fn already_optimal_flow_cancels_nothing() {
        let (g, sigma) = generators::bipartite_assignment(4, 2, 6, 3);
        let (mut flow, _) = ssp_min_cost_flow(&g, &sigma).unwrap();
        let mut clique = Clique::new(g.n());
        assert_eq!(cancel_negative_cycles(&mut clique, &g, &mut flow), 0);
    }

    #[test]
    fn cancelling_on_general_capacities() {
        // A 4-cycle with a costly route carrying flow that can be rerouted.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2, 10); // expensive
        g.add_edge(0, 2, 2, 1);
        g.add_edge(2, 1, 2, 1); // cheap two-hop
        let sigma = vec![2i64, -2, 0];
        let mut flow = vec![2, 0, 0];
        assert!(g.is_feasible_flow(&flow, &sigma));
        let mut clique = Clique::new(3);
        let cancelled = cancel_negative_cycles(&mut clique, &g, &mut flow);
        assert!(cancelled >= 1);
        assert_eq!(g.flow_cost(&flow), 4);
        assert!(g.is_feasible_flow(&flow, &sigma));
    }
}
