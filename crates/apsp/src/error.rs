//! Typed errors of the shortest-path routines.

use std::fmt;

use cc_model::ModelError;

/// Failure of a distributed shortest-path run.
///
/// Precondition violations (out-of-range arcs, bad source, clique too
/// small) remain panics; runtime failures of the communication substrate
/// (congestion under a tightened budget, injected faults) surface here.
/// Note that [`crate::apsp_from_arcs`] and [`crate::approx_apsp`] only
/// *charge* rounds to the ledger — they move no payload through the
/// substrate, so they have no failure path and stay infallible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApspError {
    /// The communication substrate rejected a primitive call.
    Comm(ModelError),
}

impl fmt::Display for ApspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApspError::Comm(e) => write!(f, "communication failure during shortest paths: {e}"),
        }
    }
}

impl std::error::Error for ApspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApspError::Comm(e) => Some(e),
        }
    }
}

impl From<ModelError> for ApspError {
    fn from(e: ModelError) -> Self {
        ApspError::Comm(e)
    }
}
