//! Distributed Bellman–Ford single-source shortest paths.
//!
//! One relaxation sweep per round: every vertex broadcasts its current
//! distance (1 word to every other node), then relaxes its incoming arcs
//! locally. Negative arc weights are allowed — the routine either
//! converges (≤ `n` rounds, with early exit) or reports a negative cycle.
//! This is the honest implementable `O(n)`-round SSSP the min-cost-flow
//! optimality backstop charges for.

use cc_model::Communicator;

use crate::ApspError;

/// Result of [`sssp_bellman_ford`].
#[derive(Debug, Clone, PartialEq)]
pub enum SsspOutcome {
    /// Distances settled. `dist[v] = None` means unreachable;
    /// `parent[v]` is the arc index (into the input slice) that last
    /// relaxed `v`.
    Converged {
        /// Shortest distance per vertex (`None` = unreachable).
        dist: Vec<Option<i64>>,
        /// Index of the relaxing arc per vertex (`usize::MAX` for the
        /// source / unreachable vertices).
        parent: Vec<usize>,
        /// Relaxation rounds executed (each is 1 broadcast round).
        rounds: usize,
    },
    /// A negative cycle is reachable from the source; `witness` is a
    /// vertex whose distance still improved in round `n`.
    NegativeCycle {
        /// A vertex on or reachable from the negative cycle.
        witness: usize,
    },
}

/// Runs distributed Bellman–Ford from `source` over the arcs
/// `(from, to, weight)` on vertices `0..n`, charging one broadcast round
/// per relaxation sweep to `clique`.
///
/// # Errors
///
/// [`ApspError::Comm`] if the communication substrate rejects a sweep's
/// broadcast (injected faults surface here, never as panics).
///
/// # Panics
///
/// Panics if an arc is out of range, `source ≥ n`, or `clique.n() < n`.
pub fn sssp_bellman_ford<C: Communicator>(
    clique: &mut C,
    n: usize,
    arcs: &[(usize, usize, i64)],
    source: usize,
) -> Result<SsspOutcome, ApspError> {
    assert!(source < n, "source out of range");
    assert!(clique.n() >= n, "clique too small");
    for &(u, v, _) in arcs {
        assert!(u < n && v < n, "arc out of range");
    }
    const UNREACHED: i64 = i64::MAX / 4;
    let mut dist = vec![UNREACHED; n];
    let mut parent = vec![usize::MAX; n];
    dist[source] = 0;

    clique.phase("sssp_bellman_ford", |clique| {
        let mut rounds = 0usize;
        for sweep in 0..n {
            // Every vertex broadcasts its distance: 1 round.
            clique.broadcast_all(&vec![0u64; clique.n()])?;
            rounds += 1;
            let snapshot = dist.clone();
            let mut changed = false;
            for (i, &(u, v, w)) in arcs.iter().enumerate() {
                if snapshot[u] < UNREACHED && snapshot[u] + w < dist[v] {
                    dist[v] = snapshot[u] + w;
                    parent[v] = i;
                    changed = true;
                }
            }
            if !changed {
                return Ok(SsspOutcome::Converged {
                    dist: dist.iter().map(|&d| (d < UNREACHED).then_some(d)).collect(),
                    parent,
                    rounds,
                });
            }
            if sweep == n - 1 {
                // An improvement in the n-th synchronous sweep certifies a
                // negative cycle.
                let witness = arcs
                    .iter()
                    .enumerate()
                    .find(|(_, &(u, v, w))| {
                        snapshot[u] < UNREACHED && snapshot[u] + w < snapshot[v]
                    })
                    .map(|(_, &(_, v, _))| v)
                    .unwrap_or(source);
                return Ok(SsspOutcome::NegativeCycle { witness });
            }
        }
        Ok(SsspOutcome::Converged {
            dist: dist.iter().map(|&d| (d < UNREACHED).then_some(d)).collect(),
            parent,
            rounds,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::Clique;

    #[test]
    fn chain_distances() {
        let mut clique = Clique::new(4);
        let out = sssp_bellman_ford(
            &mut clique,
            4,
            &[(0, 1, 2), (1, 2, 3), (0, 2, 10), (3, 0, 1)],
            0,
        )
        .unwrap();
        match out {
            SsspOutcome::Converged {
                dist,
                parent,
                rounds,
            } => {
                assert_eq!(dist[0], Some(0));
                assert_eq!(dist[1], Some(2));
                assert_eq!(dist[2], Some(5));
                assert_eq!(dist[3], None);
                assert_eq!(parent[2], 1);
                assert!(rounds <= 4);
                assert_eq!(clique.ledger().total_rounds(), rounds as u64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn handles_negative_arcs_without_cycles() {
        let mut clique = Clique::new(3);
        let out =
            sssp_bellman_ford(&mut clique, 3, &[(0, 1, 5), (1, 2, -3), (0, 2, 4)], 0).unwrap();
        match out {
            SsspOutcome::Converged { dist, .. } => {
                assert_eq!(dist[2], Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detects_negative_cycles() {
        let mut clique = Clique::new(3);
        let out =
            sssp_bellman_ford(&mut clique, 3, &[(0, 1, 1), (1, 2, -2), (2, 1, 1)], 0).unwrap();
        assert!(matches!(out, SsspOutcome::NegativeCycle { .. }));
    }

    #[test]
    fn unreachable_negative_cycle_is_ignored() {
        let mut clique = Clique::new(4);
        // Cycle 2↔3 is negative but not reachable from 0.
        let out =
            sssp_bellman_ford(&mut clique, 4, &[(0, 1, 1), (2, 3, -5), (3, 2, 1)], 0).unwrap();
        assert!(matches!(out, SsspOutcome::Converged { .. }));
    }

    #[test]
    fn early_exit_charges_few_rounds() {
        // Star: converges in 2 sweeps regardless of n.
        let n = 32;
        let arcs: Vec<(usize, usize, i64)> = (1..n).map(|v| (0, v, 1)).collect();
        let mut clique = Clique::new(n);
        let out = sssp_bellman_ford(&mut clique, n, &arcs, 0).unwrap();
        match out {
            SsspOutcome::Converged { rounds, .. } => assert!(rounds <= 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
