//! Min-plus (tropical) matrix squaring with successor tracking.

use cc_model::{Communicator, CostKind};

/// Sentinel "no path" distance (safely addable without overflow).
pub const INFINITY: i64 = i64::MAX / 4;

/// How APSP rounds are charged (see crate docs and `DESIGN.md` §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundModel {
    /// Implementable semiring matmul: `⌈n^{1/3}⌉` implemented rounds per
    /// distance product, `⌈log₂ n⌉` products.
    Semiring,
    /// The \[CKKL+19\] fast-matrix-multiplication accounting:
    /// `⌈n^{0.158}⌉` rounds charged once per APSP call (oracle cost).
    FastMatMul,
}

impl RoundModel {
    /// Rounds for one full APSP computation on `n` vertices.
    pub fn apsp_rounds(self, n: usize) -> u64 {
        let nf = n as f64;
        match self {
            RoundModel::Semiring => {
                let per_product = nf.cbrt().ceil() as u64;
                let products = (nf.log2().ceil() as u64).max(1);
                per_product * products
            }
            RoundModel::FastMatMul => nf.powf(0.158).ceil() as u64,
        }
    }
}

/// All-pairs shortest path distances and first-hop successors.
#[derive(Debug, Clone)]
pub struct Apsp {
    n: usize,
    dist: Vec<i64>,
    /// First hop on a shortest `u → v` path (`usize::MAX` = unreachable).
    next: Vec<usize>,
}

impl Apsp {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Shortest-path distance from `u` to `v` (`None` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices.
    pub fn dist(&self, u: usize, v: usize) -> Option<i64> {
        assert!(u < self.n && v < self.n, "vertex out of range");
        let d = self.dist[u * self.n + v];
        (d < INFINITY).then_some(d)
    }

    /// True if `v` is reachable from `u`.
    pub fn reachable(&self, u: usize, v: usize) -> bool {
        self.dist(u, v).is_some()
    }

    /// A shortest `u → v` path as a vertex sequence (including both
    /// endpoints), or `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices.
    pub fn path(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if u == v {
            return Some(vec![u]);
        }
        self.dist(u, v)?;
        let mut path = vec![u];
        let mut cur = u;
        // A shortest path visits each vertex at most once (non-negative
        // weights, first-hop successors from shortest-path trees).
        for _ in 0..self.n {
            cur = self.next[cur * self.n + v];
            debug_assert_ne!(cur, usize::MAX);
            path.push(cur);
            if cur == v {
                return Some(path);
            }
        }
        panic!("successor chain failed to reach the target");
    }

    /// The closest vertex of `targets` from `source`
    /// (`None` if none is reachable); ties broken by smaller vertex id.
    pub fn closest_target(&self, source: usize, targets: &[usize]) -> Option<(usize, i64)> {
        let mut best: Option<(usize, i64)> = None;
        for &t in targets {
            if let Some(d) = self.dist(source, t) {
                let better = match best {
                    None => true,
                    Some((bt, bd)) => d < bd || (d == bd && t < bt),
                };
                if better {
                    best = Some((t, d));
                }
            }
        }
        best
    }
}

/// Computes exact APSP (distances + successors) of the directed graph
/// given by `arcs = (from, to, weight)` on `n` vertices, by `⌈log₂ n⌉`
/// min-plus squarings, charging rounds to `clique` per `model`.
///
/// Parallel arcs take the minimum weight; deterministic tie-breaking
/// (smaller intermediate vertex first).
///
/// # Panics
///
/// Panics if an arc is out of range, a weight is negative, or
/// `clique.n() < n`.
pub fn apsp_from_arcs<C: Communicator>(
    clique: &mut C,
    n: usize,
    arcs: &[(usize, usize, i64)],
    model: RoundModel,
) -> Apsp {
    assert!(clique.n() >= n, "clique too small");
    let mut dist = vec![INFINITY; n * n];
    let mut next = vec![usize::MAX; n * n];
    for v in 0..n {
        dist[v * n + v] = 0;
        next[v * n + v] = v;
    }
    for &(u, v, w) in arcs {
        assert!(u < n && v < n, "arc ({u},{v}) out of range");
        assert!(
            w >= 0,
            "min-plus APSP requires non-negative weights, got {w}"
        );
        if u == v {
            continue;
        }
        if w < dist[u * n + v] {
            dist[u * n + v] = w;
            next[u * n + v] = v;
        }
    }

    clique.phase("apsp", |clique| {
        let nf = n as f64;
        let squarings = (nf.log2().ceil() as usize).max(1);
        match model {
            RoundModel::Semiring => {
                let per_product = nf.cbrt().ceil() as u64;
                for _ in 0..squarings {
                    clique
                        .ledger_mut()
                        .charge(per_product, CostKind::Implemented);
                    square(n, &mut dist, &mut next);
                }
            }
            RoundModel::FastMatMul => {
                clique.charge_oracle(model.apsp_rounds(n));
                for _ in 0..squarings {
                    square(n, &mut dist, &mut next);
                }
            }
        }
    });
    Apsp { n, dist, next }
}

/// One min-plus squaring `D ← D ⊗ D` with successor updates.
fn square(n: usize, dist: &mut [i64], next: &mut [usize]) {
    let old_dist = dist.to_vec();
    let old_next = next.to_vec();
    for u in 0..n {
        for k in 0..n {
            let duk = old_dist[u * n + k];
            if duk >= INFINITY {
                continue;
            }
            for v in 0..n {
                let cand = duk + old_dist[k * n + v];
                if cand < dist[u * n + v] {
                    dist[u * n + v] = cand;
                    next[u * n + v] = old_next[u * n + k];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bellman_ford(n: usize, arcs: &[(usize, usize, i64)], s: usize) -> Vec<i64> {
        let mut d = vec![INFINITY; n];
        d[s] = 0;
        for _ in 0..n {
            for &(u, v, w) in arcs {
                if d[u] < INFINITY && d[u] + w < d[v] {
                    d[v] = d[u] + w;
                }
            }
        }
        d
    }

    #[test]
    fn simple_chain_distances_and_paths() {
        let mut clique = Clique::new(4);
        let apsp = apsp_from_arcs(
            &mut clique,
            4,
            &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)],
            RoundModel::Semiring,
        );
        assert_eq!(apsp.dist(0, 3), Some(3));
        assert_eq!(apsp.path(0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(apsp.dist(3, 0), None);
        assert!(!apsp.reachable(3, 0));
        assert_eq!(apsp.path(2, 2), Some(vec![2]));
    }

    #[test]
    fn matches_bellman_ford_on_random_digraphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let n = 12;
            let arcs: Vec<(usize, usize, i64)> = (0..40)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(0..20),
                    )
                })
                .filter(|&(u, v, _)| u != v)
                .collect();
            let mut clique = Clique::new(n);
            let apsp = apsp_from_arcs(&mut clique, n, &arcs, RoundModel::Semiring);
            for s in 0..n {
                let bf = bellman_ford(n, &arcs, s);
                for (v, &want) in bf.iter().enumerate() {
                    let got = apsp.dist(s, v).unwrap_or(INFINITY);
                    assert_eq!(got, want, "s={s} v={v}");
                }
            }
        }
    }

    #[test]
    fn paths_are_consistent_with_distances() {
        let g = generators::random_unit_digraph(15, 30, 9, 3);
        let arcs: Vec<(usize, usize, i64)> =
            g.edges().iter().map(|e| (e.from, e.to, e.cost)).collect();
        let mut clique = Clique::new(15);
        let apsp = apsp_from_arcs(&mut clique, 15, &arcs, RoundModel::Semiring);
        for u in 0..15 {
            for v in 0..15 {
                if let Some(path) = apsp.path(u, v) {
                    assert_eq!(path[0], u);
                    assert_eq!(*path.last().unwrap(), v);
                    // Path cost equals claimed distance.
                    let mut cost = 0;
                    for w in path.windows(2) {
                        let arc_w = arcs
                            .iter()
                            .filter(|&&(a, b, _)| a == w[0] && b == w[1])
                            .map(|&(_, _, c)| c)
                            .min()
                            .expect("path uses existing arcs");
                        cost += arc_w;
                    }
                    assert_eq!(Some(cost), apsp.dist(u, v));
                    // Simple path.
                    let set: std::collections::BTreeSet<_> = path.iter().collect();
                    assert_eq!(set.len(), path.len());
                }
            }
        }
    }

    #[test]
    fn round_charges_by_model() {
        let arcs = vec![(0usize, 1usize, 1i64)];
        let mut c1 = Clique::new(64);
        let _ = apsp_from_arcs(&mut c1, 64, &arcs, RoundModel::Semiring);
        // ceil(64^(1/3)) = 4 per product, log2(64) = 6 products.
        assert_eq!(c1.ledger().implemented_rounds(), 24);
        assert_eq!(c1.ledger().charged_rounds(), 0);

        let mut c2 = Clique::new(64);
        let _ = apsp_from_arcs(&mut c2, 64, &arcs, RoundModel::FastMatMul);
        assert_eq!(c2.ledger().implemented_rounds(), 0);
        assert_eq!(
            c2.ledger().charged_rounds(),
            (64f64).powf(0.158).ceil() as u64
        );
    }

    #[test]
    fn fast_model_rounds_grow_slower_than_semiring() {
        for &n in &[64usize, 256, 1024] {
            assert!(
                RoundModel::FastMatMul.apsp_rounds(n) < RoundModel::Semiring.apsp_rounds(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn closest_target_prefers_distance_then_id() {
        let mut clique = Clique::new(4);
        let apsp = apsp_from_arcs(
            &mut clique,
            4,
            &[(0, 1, 5), (0, 2, 5), (0, 3, 2)],
            RoundModel::Semiring,
        );
        assert_eq!(apsp.closest_target(0, &[1, 2, 3]), Some((3, 2)));
        assert_eq!(apsp.closest_target(0, &[2, 1]), Some((1, 5)));
        assert_eq!(apsp.closest_target(1, &[2, 3]), None);
    }

    #[test]
    fn parallel_arcs_take_minimum() {
        let mut clique = Clique::new(2);
        let apsp = apsp_from_arcs(
            &mut clique,
            2,
            &[(0, 1, 9), (0, 1, 4), (0, 1, 7)],
            RoundModel::Semiring,
        );
        assert_eq!(apsp.dist(0, 1), Some(4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let mut clique = Clique::new(2);
        let _ = apsp_from_arcs(&mut clique, 2, &[(0, 1, -3)], RoundModel::Semiring);
    }
}
