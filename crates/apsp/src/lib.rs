//! # cc-apsp — algebraic shortest paths in the congested clique
//!
//! The flow algorithms of §5–§6 find augmenting paths with the algebraic
//! APSP methods of Censor-Hillel, Kaski, Korhonen, Lenzen, Paz & Suomela
//! \[CKKL+19\]: `O(n^{0.158})` rounds for `(1+o(1))`-approximate weighted
//! directed APSP. The exponent `0.158 = 1 − 2/ω` requires fast rectangular
//! matrix multiplication, which no implementable algorithm attains; per
//! `DESIGN.md` §2.3 this crate substitutes **exact min-plus repeated
//! squaring** (identical outputs — distances plus successor matrix, which
//! strictly dominate the approximation guarantee the flow algorithms
//! need) under two switchable round-accounting models:
//!
//! * [`RoundModel::Semiring`] — the honest implementable cost:
//!   `O(n^{1/3})` rounds per distance product (\[CKKL+19\] semiring
//!   matmul), `⌈log₂ n⌉` products per APSP;
//! * [`RoundModel::FastMatMul`] — the paper's accounting: `⌈n^{0.158}⌉`
//!   rounds for the whole APSP call, tagged as a charged oracle cost.
//!
//! ```
//! use cc_model::Clique;
//! use cc_apsp::{apsp_from_arcs, RoundModel};
//!
//! // 0 → 1 → 2 with weights 2 and 3.
//! let mut clique = Clique::new(3);
//! let apsp = apsp_from_arcs(&mut clique, 3, &[(0, 1, 2), (1, 2, 3)], RoundModel::Semiring);
//! assert_eq!(apsp.dist(0, 2), Some(5));
//! assert_eq!(apsp.path(0, 2), Some(vec![0, 1, 2]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod error;
mod minplus;
mod session;
mod sssp;

pub use approx::{approx_apsp, ApproxApsp};
pub use error::ApspError;
pub use minplus::{apsp_from_arcs, Apsp, RoundModel, INFINITY};
pub use session::ApspSession;
pub use sssp::{sssp_bellman_ford, SsspOutcome};
