//! Reentrant shortest-path sessions over a fixed arc set.
//!
//! The one-shot entry points ([`crate::apsp_from_arcs`],
//! [`crate::sssp_bellman_ford`]) take the arc list per call; an
//! [`ApspSession`] pins the vertex count, arc list, and
//! [`RoundModel`] once and answers any number of shortest-path requests
//! against them. The full APSP matrix is computed (and its rounds
//! charged) at most once per session — min-plus squaring on a fixed arc
//! set is deterministic, so the memoized [`Apsp`] is exactly what a
//! recomputation would produce. This is the middle-layer adapter the
//! service (`DESIGN.md` §11) keeps per registered directed graph.

use cc_model::Communicator;

use crate::minplus::{apsp_from_arcs, Apsp, RoundModel};
use crate::sssp::{sssp_bellman_ford, SsspOutcome};
use crate::ApspError;

/// A reentrant shortest-path session: fixed `(n, arcs, model)` plus the
/// memoized APSP matrix of the arc set.
#[derive(Debug, Clone)]
pub struct ApspSession {
    n: usize,
    arcs: Vec<(usize, usize, i64)>,
    model: RoundModel,
    apsp: Option<Apsp>,
}

impl ApspSession {
    /// A session over arcs `(from, to, weight)` on vertices `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if an arc endpoint is `≥ n`.
    pub fn new(n: usize, arcs: Vec<(usize, usize, i64)>, model: RoundModel) -> Self {
        for &(u, v, _) in &arcs {
            assert!(u < n && v < n, "arc out of range");
        }
        Self {
            n,
            arcs,
            model,
            apsp: None,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The session's arc set.
    pub fn arcs(&self) -> &[(usize, usize, i64)] {
        &self.arcs
    }

    /// The round-accounting model APSP computations use.
    pub fn model(&self) -> RoundModel {
        self.model
    }

    /// The memoized APSP matrix, if a request already paid for it.
    pub fn apsp_cached(&self) -> Option<&Apsp> {
        self.apsp.as_ref()
    }

    /// All-pairs shortest paths over the session's arcs. The first call
    /// runs [`crate::apsp_from_arcs`] (charging its rounds to `clique`);
    /// later calls return the memoized matrix free of charge —
    /// bitwise-identical to recomputation because min-plus squaring on a
    /// fixed arc set is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `clique.n() < n`.
    pub fn apsp<C: Communicator>(&mut self, clique: &mut C) -> &Apsp {
        if self.apsp.is_none() {
            self.apsp = Some(apsp_from_arcs(clique, self.n, &self.arcs, self.model));
        }
        self.apsp.as_ref().expect("just computed")
    }

    /// Single-source shortest paths from `source` over the session's
    /// arcs ([`crate::sssp_bellman_ford`]; one broadcast round per
    /// relaxation sweep, every call charged).
    ///
    /// # Errors
    ///
    /// [`ApspError::Comm`] if the communication substrate rejects a
    /// sweep's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `source ≥ n` or `clique.n() < n`.
    pub fn sssp<C: Communicator>(
        &self,
        clique: &mut C,
        source: usize,
    ) -> Result<SsspOutcome, ApspError> {
        sssp_bellman_ford(clique, self.n, &self.arcs, source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::Clique;

    #[test]
    fn apsp_memoized_after_first_request() {
        let arcs = vec![(0usize, 1usize, 2i64), (1, 2, 3), (0, 2, 10)];
        let mut session = ApspSession::new(3, arcs.clone(), RoundModel::Semiring);
        assert!(session.apsp_cached().is_none());
        let mut clique = Clique::new(3);
        let d02 = session.apsp(&mut clique).dist(0, 2);
        assert_eq!(d02, Some(5));
        let paid = clique.ledger().total_rounds();
        assert!(paid > 0, "first APSP must charge rounds");

        // Second request: same answer, zero new rounds.
        assert_eq!(session.apsp(&mut clique).dist(0, 2), Some(5));
        assert_eq!(clique.ledger().total_rounds(), paid);

        // Matches a fresh one-shot computation entry for entry.
        let fresh = apsp_from_arcs(&mut Clique::new(3), 3, &arcs, RoundModel::Semiring);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(session.apsp_cached().unwrap().dist(u, v), fresh.dist(u, v));
            }
        }
    }

    #[test]
    fn sssp_charges_every_call() {
        let session = ApspSession::new(3, vec![(0, 1, 1), (1, 2, 1)], RoundModel::Semiring);
        let mut clique = Clique::new(3);
        let first = session.sssp(&mut clique, 0).unwrap();
        let after_first = clique.ledger().total_rounds();
        let second = session.sssp(&mut clique, 0).unwrap();
        assert_eq!(first, second);
        assert_eq!(clique.ledger().total_rounds(), 2 * after_first);
    }
}
