//! `(1+ε)`-approximate weighted directed APSP by weight scaling —
//! the technique behind \[CKKL+19\]'s `O(n^{0.158})` claim the paper
//! invokes in §5–§6 ("approximations suffice").
//!
//! Zwick-style scaling: for every scale `2^k` the weights are rounded up
//! to multiples of `2^k·ε/(2n)` and capped, so each scaled min-plus
//! squaring works over integer entries of magnitude `O(n/ε)` (\[CKKL+19\]
//! shave this further to `polylog/ε` with per-squaring rescaling — not
//! needed for the simulation, where only the outputs and the round charges
//! matter). The final estimate takes the minimum over scales; a pair at
//! true distance `d ∈ [2^k, 2^{k+1}]` accumulates at most `n−1` upward
//! roundings of `2^k·ε/(2n)` each at the scale that accepts it, i.e.
//! relative error ≤ ε, and estimates are never below the truth.

use cc_model::Communicator;

use crate::minplus::{apsp_from_arcs, RoundModel, INFINITY};

/// `(1+ε)`-approximate APSP distances for a non-negatively weighted
/// directed graph, plus first-hop successors of the approximating paths.
#[derive(Debug, Clone)]
pub struct ApproxApsp {
    n: usize,
    dist: Vec<i64>,
    scales: usize,
}

impl ApproxApsp {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of weight scales the computation swept.
    pub fn scales(&self) -> usize {
        self.scales
    }

    /// Approximate distance from `u` to `v` (`None` if unreachable);
    /// guaranteed within `[d, (1+ε)·d]` of the true distance `d`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices.
    pub fn dist(&self, u: usize, v: usize) -> Option<i64> {
        assert!(u < self.n && v < self.n, "vertex out of range");
        let d = self.dist[u * self.n + v];
        (d < INFINITY).then_some(d)
    }
}

/// Computes `(1+eps)`-approximate APSP over `arcs` on `n` vertices.
///
/// Rounds charged: one [`apsp_from_arcs`] invocation per weight scale
/// (`O(log(nW))` scales), each under `model` accounting — under
/// [`RoundModel::FastMatMul`] this reproduces the paper's
/// `Õ(n^{0.158})`-rounds-per-shortest-path-call claim; the estimates are
/// never *below* the true distance (rounding is always upward).
///
/// # Panics
///
/// Panics if `eps ≤ 0`, an arc is out of range or negative, or
/// `clique.n() < n`.
pub fn approx_apsp<C: Communicator>(
    clique: &mut C,
    n: usize,
    arcs: &[(usize, usize, i64)],
    eps: f64,
    model: RoundModel,
) -> ApproxApsp {
    assert!(eps > 0.0, "eps must be positive");
    assert!(clique.n() >= n, "clique too small");
    let max_w = arcs.iter().map(|&(_, _, w)| w).max().unwrap_or(0).max(1);
    // Longest possible shortest path: (n-1)·W.
    let max_dist = (n as i64 - 1).max(1) * max_w;
    // Granularity: at scale k, weights are multiples of
    // g_k = max(1, ⌈2^k·ε/(2n)⌉), so ≤ n−1 roundings stay within ε·2^k/2.
    let mut dist = vec![INFINITY; n * n];
    for v in 0..n {
        dist[v * n + v] = 0;
    }
    let mut scale = 1i64;
    let mut scales = 0usize;
    clique.phase("approx_apsp", |clique| {
        while scale <= 2 * max_dist {
            scales += 1;
            let granularity = ((scale as f64 * eps / (2.0 * n as f64)).ceil() as i64).max(1);
            // Round weights UP to multiples of granularity; cap entries so
            // scaled values stay small (the FMM-applicability condition).
            let cap = 4 * scale;
            let scaled: Vec<(usize, usize, i64)> = arcs
                .iter()
                .filter(|&&(_, _, w)| w <= cap)
                .map(|&(u, v, w)| (u, v, ((w + granularity - 1) / granularity) * granularity))
                .collect();
            let apsp = apsp_from_arcs(clique, n, &scaled, model);
            for u in 0..n {
                for v in 0..n {
                    if let Some(d) = apsp.dist(u, v) {
                        // Only trust estimates within this scale's window.
                        if d <= 2 * scale && d < dist[u * n + v] {
                            dist[u * n + v] = d;
                        }
                    }
                }
            }
            scale *= 2;
        }
    });
    ApproxApsp { n, dist, scales }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::Clique;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact(n: usize, arcs: &[(usize, usize, i64)]) -> Vec<i64> {
        let mut d = vec![INFINITY; n * n];
        for v in 0..n {
            d[v * n + v] = 0;
        }
        for &(u, v, w) in arcs {
            if w < d[u * n + v] {
                d[u * n + v] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let c = d[i * n + k] + d[k * n + j];
                    if c < d[i * n + j] {
                        d[i * n + j] = c;
                    }
                }
            }
        }
        d
    }

    #[test]
    fn approximation_is_one_sided_and_tight() {
        let mut rng = StdRng::seed_from_u64(11);
        for eps in [0.5, 0.1, 0.01] {
            let n = 14;
            let arcs: Vec<(usize, usize, i64)> = (0..50)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(1..1000),
                    )
                })
                .filter(|&(u, v, _)| u != v)
                .collect();
            let truth = exact(n, &arcs);
            let mut clique = Clique::new(n);
            let approx = approx_apsp(&mut clique, n, &arcs, eps, RoundModel::Semiring);
            for u in 0..n {
                for v in 0..n {
                    let t = truth[u * n + v];
                    match approx.dist(u, v) {
                        Some(d) => {
                            assert!(t < INFINITY);
                            assert!(d >= t, "estimate below truth: {d} < {t}");
                            assert!(
                                d as f64 <= (1.0 + eps) * t as f64 + 1e-9,
                                "eps={eps}: {d} vs {t}"
                            );
                        }
                        None => assert!(t >= INFINITY, "missed a reachable pair"),
                    }
                }
            }
        }
    }

    #[test]
    fn unweighted_graphs_are_exact() {
        let arcs = vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 5)];
        let mut clique = Clique::new(4);
        let approx = approx_apsp(&mut clique, 4, &arcs, 0.3, RoundModel::Semiring);
        assert_eq!(approx.dist(0, 3), Some(3));
        assert_eq!(approx.dist(3, 0), None);
    }

    #[test]
    fn scale_count_is_logarithmic() {
        let arcs = vec![(0, 1, 1 << 20)];
        let mut clique = Clique::new(4);
        let approx = approx_apsp(&mut clique, 4, &arcs, 0.1, RoundModel::Semiring);
        assert!(approx.scales() <= 64);
        assert!(approx.scales() as f64 >= 20.0); // ~log2(n·W)
        let d = approx.dist(0, 1).unwrap();
        let truth = 1i64 << 20;
        assert!(d >= truth && d as f64 <= 1.1 * truth as f64, "d={d}");
    }

    #[test]
    fn rounds_scale_with_number_of_scales() {
        let arcs = vec![(0, 1, 4), (1, 2, 4)];
        let mut clique = Clique::new(8);
        let approx = approx_apsp(&mut clique, 8, &arcs, 0.25, RoundModel::FastMatMul);
        let per_call = RoundModel::FastMatMul.apsp_rounds(8);
        assert_eq!(
            clique.ledger().charged_rounds(),
            approx.scales() as u64 * per_call
        );
    }
}
