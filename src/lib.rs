//! # laplacian-clique
//!
//! A from-scratch Rust reproduction of **"The Laplacian Paradigm in
//! Deterministic Congested Clique"** (Sebastian Forster & Tijn de Vos,
//! PODC 2023, arXiv:2304.02315): deterministic Laplacian solvers, spectral
//! sparsifiers, Eulerian orientations, flow rounding, and exact
//! maximum-flow / min-cost-flow interior point methods, all running on a
//! simulated congested clique with honest round accounting.
//!
//! ## The results reproduced
//!
//! | Theorem | Claim | Entry point |
//! |---------|-------|-------------|
//! | 1.1 | Laplacian systems to precision ε in `n^{o(1)} log(U/ε)` rounds | [`core::LaplacianSolver`] |
//! | 1.2 | exact max flow in `m^{3/7+o(1)} U^{1/7}` rounds | [`maxflow::max_flow_ipm`] |
//! | 1.3 | unit-capacity min cost flow in `Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W))` rounds | [`mcf::min_cost_flow_ipm`] |
//! | 1.4 | Eulerian orientation in `O(log n log* n)` rounds | [`euler::eulerian_orientation`] |
//! | 3.3 | deterministic spectral sparsifier, `O(n log n log U)` edges | [`sparsify::build_sparsifier`] |
//! | 4.2 | flow rounding in `O(log n log* n log(1/Δ))` rounds | [`euler::round_flow`] |
//!
//! ## Quickstart
//!
//! ```
//! use laplacian_clique::prelude::*;
//!
//! // An electrical question on a 32-node expander: solve L x = b.
//! let g = generators::expander(32);
//! let mut clique = Clique::new(32);
//! let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default())?;
//! let mut b = vec![0.0; 32];
//! b[0] = 1.0;
//! b[31] = -1.0;
//! let solution = solver.solve(&mut clique, &b, 1e-8)?;
//! assert!(solution.relative_error().expect("reference kept") <= 1e-8);
//! println!("{}", clique.ledger().report());
//! # Ok::<(), laplacian_clique::core::CoreError>(())
//! ```
//!
//! See `DESIGN.md` for the architecture and the simulation substitutions,
//! and `EXPERIMENTS.md` for the paper-vs-measured record of every claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cc_apsp as apsp;
pub use cc_core as core;
pub use cc_euler as euler;
pub use cc_graph as graph;
pub use cc_linalg as linalg;
pub use cc_maxflow as maxflow;
pub use cc_mcf as mcf;
pub use cc_model as model;
pub use cc_service as service;
pub use cc_sparsify as sparsify;

/// The most common imports in one place.
pub mod prelude {
    pub use cc_apsp::{apsp_from_arcs, Apsp, ApspError, RoundModel};
    pub use cc_core::{
        solve_laplacian, CoreError, ElectricalNetwork, LaplacianSolver, SolveOutcome, SolverOptions,
    };
    pub use cc_euler::{
        eulerian_orientation, is_eulerian_orientation, round_flow, EulerError, FlowRoundingOptions,
        OrientationCriterion,
    };
    pub use cc_graph::{generators, DiGraph, Graph};
    pub use cc_maxflow::{
        dinic, max_flow_ford_fulkerson, max_flow_ipm, max_flow_trivial, IpmOptions, MaxFlowError,
        MaxFlowOutcome,
    };
    pub use cc_mcf::{min_cost_flow_ipm, ssp_min_cost_flow, McfError, McfOptions, McfOutcome};
    pub use cc_model::{Clique, CliqueConfig, FaultComm, FaultPlan, ModelError, RoundLedger};
    pub use cc_service::{FlowEngine, GraphSpec, Request, Response, ServiceError};
    pub use cc_sparsify::{build_sparsifier, verify_sparsifier, SparsifyError, SparsifyParams};
}
