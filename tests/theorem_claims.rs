//! The paper's theorems as executable claims — one test per statement,
//! written to read like the theorem it checks.

use laplacian_clique::prelude::*;

/// **Theorem 1.1.** There is a deterministic algorithm in the congested
/// clique that, given an undirected graph `G` with positive real weights
/// bounded by `U` and a vector `b`, computes `x` with
/// `‖x − L†b‖_L ≤ ε‖L†b‖_L` in `n^{o(1)} log(U/ε)` rounds.
#[test]
fn theorem_1_1_laplacian_solver() {
    // Real (non-integer) weights bounded by U = 100.
    let mut g = Graph::new(20);
    for i in 0..19 {
        g.add_edge(i, i + 1, 1.5 + (i as f64) * 0.37);
    }
    for i in 0..10 {
        g.add_edge(i, i + 10, 99.5 - i as f64);
    }
    let mut clique = Clique::new(20);
    let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
    let mut b = vec![0.0; 20];
    b[3] = 2.0;
    b[17] = -2.0;
    // Determinism of the deterministic algorithm:
    let before = clique.ledger().total_rounds();
    let x1 = solver.solve(&mut clique, &b, 1e-9).unwrap();
    let rounds1 = clique.ledger().total_rounds() - before;
    let x2 = solver.solve(&mut clique, &b, 1e-9).unwrap();
    assert_eq!(x1.x, x2.x);
    // The ε guarantee:
    assert!(x1.relative_error().expect("reference kept") <= 1e-9 * 1.05);
    // log(1/ε) scaling of the round count:
    let before = clique.ledger().total_rounds();
    let _ = solver.solve(&mut clique, &b, 1e-3).unwrap();
    let rounds_loose = clique.ledger().total_rounds() - before;
    assert!(
        rounds_loose < rounds1,
        "fewer digits must cost fewer rounds"
    );
}

/// **Theorem 1.2.** There exists a deterministic algorithm that, given a
/// graph with integer capacities `1..=U`, solves the maximum flow problem
/// in `m^{3/7+o(1)} U^{1/7}` rounds in the congested clique.
#[test]
fn theorem_1_2_maximum_flow() {
    let g = generators::random_flow_network(14, 34, 7, 123);
    let (_, optimum) = dinic(&g, 0, 13);
    let run = || {
        let mut clique = Clique::new(14);
        let out = max_flow_ipm(&mut clique, &g, 0, 13, &IpmOptions::default()).unwrap();
        (out, clique.ledger().total_rounds())
    };
    let (out, rounds) = run();
    // Exactness:
    assert_eq!(out.value, optimum);
    assert!(g.is_feasible_flow(&out.flow, &g.st_demand(0, 13, optimum)));
    // …certified by max-flow = min-cut:
    let cut = laplacian_clique::maxflow::min_cut_from_max_flow(&g, &out.flow, 0, 13);
    assert_eq!(cut.capacity, out.value);
    // Determinism (algorithm and round count):
    let (out2, rounds2) = run();
    assert_eq!(out.flow, out2.flow);
    assert_eq!(rounds, rounds2);
}

/// **Theorem 1.3.** There exists a deterministic algorithm that, given a
/// graph with unit capacities, integer costs `1..=W`, and a demand vector
/// `σ`, solves the minimum cost flow problem in
/// `Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W))` rounds.
#[test]
fn theorem_1_3_unit_capacity_min_cost_flow() {
    let (g, sigma) = generators::bipartite_assignment(6, 2, 31, 77);
    let (_, optimum) = ssp_min_cost_flow(&g, &sigma).unwrap();
    let mut clique = Clique::new(g.n() + 2);
    let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
    // Exactness for the demands:
    assert!(g.is_feasible_flow(&out.flow, &sigma));
    assert_eq!(out.cost, optimum);
    // …certified by Klein's criterion (no negative residual cycle):
    assert!(laplacian_clique::mcf::is_min_cost(&g, &out.flow));
    // Unit capacities respected:
    assert!(out.flow.iter().all(|&f| f == 0 || f == 1));
}

/// **Theorem 1.4.** There exists a deterministic congested clique
/// algorithm that, given an Eulerian graph (all degrees even), finds an
/// Eulerian orientation in `O(log n log* n)` rounds.
#[test]
fn theorem_1_4_eulerian_orientation() {
    for n in [10usize, 100, 1000] {
        let g = generators::random_eulerian(n, 4, n as u64);
        assert!(g.is_eulerian(), "precondition: even degrees");
        let mut clique = Clique::new(n);
        let oriented = eulerian_orientation(&mut clique, &g).unwrap();
        // The defining property: in-degree = out-degree everywhere.
        assert!(is_eulerian_orientation(&g, &oriented));
        // O(log n log* n) shape: rounds per log₂(2m) stays ≤ a fixed
        // constant across two decades of n (log* ≤ 5 here). The bound
        // lives in cc_conform::shapes, shared with the conformance suite.
        let per_log =
            cc_conform::shapes::euler_rounds_per_log(clique.ledger().total_rounds(), g.m());
        assert!(
            per_log < cc_conform::shapes::EULER_PER_LOG_BOUND,
            "n={n}: per-log constant {per_log}"
        );
    }
}

/// **Theorem 3.3.** A deterministic congested clique algorithm computes a
/// `log^{O(r²)}(n)`-approximate spectral sparsifier of `O(n log n log U)`
/// edges, known to every node at the end.
#[test]
fn theorem_3_3_spectral_sparsifier() {
    let g = generators::random_connected(48, 300, 64, 1);
    let mut clique = Clique::new(48);
    let h = build_sparsifier(&mut clique, &g, &SparsifyParams::default()).unwrap();
    // Size bound O(n log n log U) — measured far below it. The bound's
    // shape lives in cc_conform::shapes, shared with the conformance
    // suite (n = 48 vertices, U = 64 the maximum weight).
    let bound = cc_conform::shapes::sparsifier_edge_bound(48, 64.0);
    assert!(
        (h.edge_count() as f64) < bound,
        "{} vs {bound}",
        h.edge_count()
    );
    // The approximation factor is certified — and honest (independent
    // dense verification of (1/α)·S_H ⪯ L_G ⪯ α·S_H):
    let exact = verify_sparsifier(&g, &h).unwrap();
    assert!(exact.alpha() <= h.alpha() * (1.0 + 1e-6));
    // Polylog-sized α in practice:
    assert!(h.alpha() < (48f64).ln().powi(2));
}

/// **Lemma 4.2.** Flow rounding: `f` with values in `Δ·ℤ` rounds to an
/// integral flow of no smaller value in `O(log n log* n log(1/Δ))`
/// rounds; with costs, the cost does not increase.
#[test]
fn lemma_4_2_flow_rounding() {
    let mut g = DiGraph::new(5);
    g.add_edge(0, 1, 2, 1);
    g.add_edge(1, 4, 2, 1);
    g.add_edge(0, 2, 2, 4);
    g.add_edge(2, 4, 2, 4);
    g.add_edge(0, 3, 2, 9);
    g.add_edge(3, 4, 2, 9);
    // Fractional flow of integral total value 2 spread over the routes.
    let frac = vec![0.75, 0.75, 0.75, 0.75, 0.5, 0.5];
    let frac_cost: f64 = g
        .edges()
        .iter()
        .zip(&frac)
        .map(|(e, &f)| e.cost as f64 * f)
        .sum();
    let mut clique = Clique::new(5);
    let out = round_flow(
        &mut clique,
        &g,
        &frac,
        0,
        4,
        0.25,
        &FlowRoundingOptions { use_costs: true },
    )
    .unwrap();
    // Value not less:
    assert!(g.flow_value(&out.flow, 0) >= 2);
    // Cost not more:
    assert!(g.flow_cost(&out.flow) as f64 <= frac_cost + 1e-9);
    // Each edge floor/ceil:
    for (i, &f) in out.flow.iter().enumerate() {
        assert!(f == frac[i].floor() as i64 || f == frac[i].ceil() as i64);
    }
    // log(1/Δ) iterations:
    assert_eq!(out.iterations, 2);
}
