//! Broadcast Congested Clique (§2.1 / §1.1 of the paper): the Laplacian
//! solver's communication pattern is broadcast-only and keeps working
//! (cf. \[FV22\]'s BCC solver), while the Eulerian orientation — whose
//! contraction relies on unicast routing — cannot run, matching the
//! paper's remark that orientations "seem to be a hard problem in the
//! Broadcast Congested Clique".

use laplacian_clique::model::{CliqueConfig, CommunicationMode};
use laplacian_clique::prelude::*;

fn broadcast_clique(n: usize) -> Clique {
    Clique::with_config(
        n,
        CliqueConfig {
            mode: CommunicationMode::Broadcast,
            ..CliqueConfig::default()
        },
    )
}

/// Theorem 1.1 runs verbatim under broadcast-only communication, with the
/// same per-iteration round count.
#[test]
fn laplacian_solver_works_in_broadcast_mode() {
    let g = generators::random_connected(32, 100, 8, 4);
    let mut bcc = broadcast_clique(32);
    let solver = LaplacianSolver::build(&mut bcc, &g, &SolverOptions::default()).unwrap();
    let mut b = vec![0.0; 32];
    b[0] = 1.0;
    b[31] = -1.0;
    let out = solver.solve(&mut bcc, &b, 1e-8).unwrap();
    assert!(out.relative_error().expect("reference kept") <= 1e-8 * 1.05);

    // Same answer and same solve-phase rounds as in unicast mode.
    let mut ucc = Clique::new(32);
    let solver2 = LaplacianSolver::build(&mut ucc, &g, &SolverOptions::default()).unwrap();
    let out2 = solver2.solve(&mut ucc, &b, 1e-8).unwrap();
    assert_eq!(out.x, out2.x);
    assert_eq!(
        bcc.ledger().phase_prefix_total("laplacian_solve"),
        ucc.ledger().phase_prefix_total("laplacian_solve")
    );
}

/// Electrical flow queries (the IPM building block) also run in BCC.
#[test]
fn electrical_flows_work_in_broadcast_mode() {
    let mut bcc = broadcast_clique(16);
    let edges: Vec<(usize, usize, f64)> = (0..15).map(|i| (i, i + 1, 1.0)).collect();
    let net = ElectricalNetwork::build(&mut bcc, 16, &edges, &SolverOptions::default()).unwrap();
    let r = net.effective_resistance(&mut bcc, 0, 15, 1e-9).unwrap();
    assert!((r - 15.0).abs() < 1e-7, "series chain resistance, got {r}");
}

/// The Eulerian orientation fails with a typed error (through the routing
/// layer's `BroadcastOnly` rejection) in broadcast mode — the §1.1
/// hardness remark made operational.
#[test]
fn eulerian_orientation_cannot_run_in_broadcast_mode() {
    let g = generators::random_eulerian(12, 3, 1);
    let mut bcc = broadcast_clique(12);
    let result = eulerian_orientation(&mut bcc, &g);
    assert!(
        result.is_err(),
        "orientation must fail without unicast routing"
    );
}

/// The trivial max-flow baseline still works in BCC (its all-gather has a
/// broadcast-only fallback) — at a worse round count, as expected.
#[test]
fn trivial_baseline_degrades_gracefully_in_broadcast_mode() {
    let g = generators::random_flow_network(12, 30, 4, 2);
    let (_, want) = dinic(&g, 0, 11);

    let mut bcc = broadcast_clique(12);
    let out = max_flow_trivial(&mut bcc, &g, 0, 11).unwrap();
    assert_eq!(out.value, want);

    let mut ucc = Clique::new(12);
    let _ = max_flow_trivial(&mut ucc, &g, 0, 11).unwrap();
    assert!(
        bcc.ledger().total_rounds() >= ucc.ledger().total_rounds(),
        "broadcast gather cannot be cheaper than balanced unicast gather"
    );
}
