//! Property-based cross-crate tests: randomized instances (seeded by
//! proptest), full-pipeline invariants.

use laplacian_clique::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1.4 as a property: any union of random cycles gets a valid
    /// Eulerian orientation, under both marking strategies.
    #[test]
    fn orientation_always_balances(
        n in 6usize..40,
        cycles in 1usize..5,
        seed in 0u64..1000,
    ) {
        let g = generators::random_eulerian(n, cycles, seed);
        let mut clique = Clique::new(n);
        let o = eulerian_orientation(&mut clique, &g).unwrap();
        prop_assert!(is_eulerian_orientation(&g, &o));

        let mut clique2 = Clique::new(n);
        let o2 = laplacian_clique::euler::orient_trails_with_strategy(
            &mut clique2,
            &g,
            &OrientationCriterion::default(),
            laplacian_clique::euler::MarkingStrategy::Randomized { seed },
        )
        .unwrap();
        prop_assert!(is_eulerian_orientation(&g, &o2));
    }

    /// Theorem 1.1 as a property: the solver meets its ε on arbitrary
    /// connected weighted graphs and arbitrary (projected) demands.
    #[test]
    fn solver_meets_epsilon(
        n in 8usize..28,
        extra in 0usize..40,
        maxw in 1u64..64,
        seed in 0u64..1000,
        src in 0usize..8,
    ) {
        let g = generators::random_connected(n, extra, maxw, seed);
        let mut clique = Clique::new(n);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let mut b = vec![0.0; n];
        b[src % n] += 1.0;
        b[n - 1 - (src % n).min(n - 2)] -= 1.0;
        if b.iter().map(|x: &f64| x.abs()).sum::<f64>() > 0.0 {
            let out = solver.solve(&mut clique, &b, 1e-6).unwrap();
            prop_assert!(out.relative_error().expect("reference kept") <= 1e-6 * 1.05);
        }
    }

    /// Lemma 4.2 as a property: rounding scaled-down optimal flows never
    /// loses value, stays feasible, and is integral.
    #[test]
    fn rounding_preserves_value_feasibly(
        n in 6usize..20,
        extra in 4usize..30,
        cap in 1i64..6,
        seed in 0u64..1000,
        num in 1u64..8,
    ) {
        let g = generators::random_flow_network(n, extra, cap, seed);
        let (opt, _) = dinic(&g, 0, n - 1);
        let delta = 1.0 / 8.0;
        let scale = num as f64 * delta; // ∈ {1/8, …, 7/8}
        let frac: Vec<f64> = opt.iter().map(|&f| f as f64 * scale).collect();
        let frac_value: f64 = g
            .edges()
            .iter()
            .zip(&frac)
            .map(|(e, &f)| if e.from == 0 { f } else if e.to == 0 { -f } else { 0.0 })
            .sum();
        let mut clique = Clique::new(n);
        let out = round_flow(&mut clique, &g, &frac, 0, n - 1, delta, &FlowRoundingOptions::default()).unwrap();
        let value = g.flow_value(&out.flow, 0);
        prop_assert!(g.is_feasible_flow(&out.flow, &g.st_demand(0, n - 1, value)));
        prop_assert!(value as f64 >= frac_value - 1e-9);
        for (i, &f) in out.flow.iter().enumerate() {
            prop_assert!(f >= (frac[i].floor() as i64));
            prop_assert!(f <= (frac[i].ceil() as i64));
        }
    }

    /// Theorem 1.2 as a property: the IPM pipeline is exact on arbitrary
    /// capacitated networks (cross-checked against Dinic).
    #[test]
    fn max_flow_pipeline_exact(
        n in 6usize..14,
        extra in 4usize..24,
        cap in 1i64..8,
        seed in 0u64..1000,
    ) {
        let g = generators::random_flow_network(n, extra, cap, seed);
        let (_, want) = dinic(&g, 0, n - 1);
        let mut clique = Clique::new(n);
        let out = max_flow_ipm(&mut clique, &g, 0, n - 1, &IpmOptions {
            // Keep property runs fast: small step budget; exactness is
            // budget-independent by construction.
            max_progress_steps: Some(6),
            ..Default::default()
        })
        .unwrap();
        prop_assert_eq!(out.value, want);
        prop_assert!(g.is_feasible_flow(&out.flow, &g.st_demand(0, n - 1, want)));
    }

    /// Theorem 1.3 as a property: exact minimum cost on random assignment
    /// instances (cross-checked against SSP).
    #[test]
    fn mcf_pipeline_exact(
        k in 2usize..7,
        extra in 1usize..4,
        w in 1i64..16,
        seed in 0u64..1000,
    ) {
        let (g, sigma) = generators::bipartite_assignment(k, extra, w, seed);
        let (_, want) = ssp_min_cost_flow(&g, &sigma).unwrap();
        let mut clique = Clique::new(g.n() + 2);
        let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions {
            max_progress_steps: Some(8),
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(out.cost, want);
        prop_assert!(g.is_feasible_flow(&out.flow, &sigma));
    }

    /// DIMACS round-trips compose with the pipelines: parse → solve →
    /// same value as solving the original.
    #[test]
    fn dimacs_roundtrip_preserves_max_flow(
        n in 5usize..12,
        extra in 2usize..16,
        cap in 1i64..5,
        seed in 0u64..1000,
    ) {
        use laplacian_clique::graph::io::{parse_dimacs_max_flow, write_dimacs_max_flow, MaxFlowInstance};
        let g = generators::random_flow_network(n, extra, cap, seed);
        let (_, want) = dinic(&g, 0, n - 1);
        let text = write_dimacs_max_flow(&MaxFlowInstance { graph: g, source: 0, sink: n - 1 });
        let inst = parse_dimacs_max_flow(&text).unwrap();
        let (_, got) = dinic(&inst.graph, inst.source, inst.sink);
        prop_assert_eq!(got, want);
    }
}
