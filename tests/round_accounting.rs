//! Round-accounting invariants: the ledger is the reproduction's measured
//! quantity, so its bookkeeping must be watertight across the stack.

use laplacian_clique::model::{CliqueConfig, CostKind};
use laplacian_clique::prelude::*;

/// Phase totals always sum to the grand total, for every pipeline.
#[test]
fn phase_totals_partition_the_grand_total() {
    let checks: Vec<Box<dyn Fn() -> Clique>> = vec![
        Box::new(|| {
            let g = generators::random_connected(24, 80, 8, 1);
            let mut clique = Clique::new(24);
            let solver =
                LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
            let mut b = vec![0.0; 24];
            b[0] = 1.0;
            b[23] = -1.0;
            let _ = solver.solve(&mut clique, &b, 1e-8).unwrap();
            clique
        }),
        Box::new(|| {
            let g = generators::random_eulerian(30, 4, 2);
            let mut clique = Clique::new(30);
            let _ = eulerian_orientation(&mut clique, &g).unwrap();
            clique
        }),
        Box::new(|| {
            let g = generators::random_flow_network(12, 24, 4, 3);
            let mut clique = Clique::new(12);
            let _ = max_flow_ipm(&mut clique, &g, 0, 11, &IpmOptions::default()).unwrap();
            clique
        }),
    ];
    for run in &checks {
        // The partition invariant lives in cc_conform::shapes, shared
        // with the conformance suite.
        cc_conform::shapes::assert_phase_partition(run().ledger());
    }
}

/// Oracle charges appear only under the phases that declare substitutions
/// (sparsifier decomposition, FastMatMul APSP) — never from the
/// communication primitives themselves.
#[test]
fn charged_rounds_only_in_declared_oracle_phases() {
    let g = generators::random_flow_network(12, 24, 4, 5);
    let mut clique = Clique::new(12);
    let _ = max_flow_ipm(&mut clique, &g, 0, 11, &IpmOptions::default()).unwrap();
    for (phase, cost) in clique.ledger().phases() {
        if cost.charged > 0 {
            assert!(
                phase.contains("sparsify") || phase.contains("apsp"),
                "unexpected charged rounds in phase {phase}"
            );
        }
    }
}

/// The Lenzen constant scales routed phases linearly and leaves broadcast
/// phases untouched.
#[test]
fn lenzen_constant_scales_routing_cost() {
    let g = generators::random_eulerian(24, 3, 7);
    let run = |lenzen: u64| {
        let mut clique = Clique::with_config(
            24,
            CliqueConfig {
                lenzen_rounds: lenzen,
                ..CliqueConfig::default()
            },
        );
        let o = eulerian_orientation(&mut clique, &g).unwrap();
        assert!(is_eulerian_orientation(&g, &o));
        clique.ledger().total_rounds()
    };
    let r2 = run(2);
    let r16 = run(16);
    // Orientation communicates exclusively via routing: exact 8x scaling.
    assert_eq!(r16, 8 * r2, "r2={r2} r16={r16}");
}

/// Semiring vs FastMatMul accounting changes only the APSP phase, and the
/// switch is visible in implemented-vs-charged attribution.
#[test]
fn round_model_switch_reattributes_apsp_costs() {
    let g = generators::random_flow_network(16, 40, 3, 9);
    let run = |model: RoundModel| {
        let mut clique = Clique::new(16);
        let out = max_flow_ford_fulkerson(&mut clique, &g, 0, 15, model).unwrap();
        (out.value, clique)
    };
    let (v1, c1) = run(RoundModel::Semiring);
    let (v2, c2) = run(RoundModel::FastMatMul);
    assert_eq!(v1, v2, "accounting must not affect results");
    // Semiring executes; FastMatMul charges.
    assert!(
        c1.ledger()
            .phase_prefix_total("ford_fulkerson/repair_augmenting_paths/apsp")
            > 0
    );
    let apsp1 = c1
        .ledger()
        .phase("ford_fulkerson/repair_augmenting_paths/apsp");
    let apsp2 = c2
        .ledger()
        .phase("ford_fulkerson/repair_augmenting_paths/apsp");
    assert_eq!(apsp1.charged, 0);
    assert_eq!(apsp2.implemented, 0);
    assert!(apsp1.implemented > 0);
    assert!(apsp2.charged > 0);
}

/// Manual ledger arithmetic: mixing direct charges, phases, and kinds.
#[test]
fn ledger_mixed_usage() {
    let mut clique = Clique::new(4);
    clique.broadcast_all(&[0, 1, 2, 3]).unwrap();
    clique.phase("x", |c| {
        c.charge_oracle(10);
        c.phase("y", |c| {
            c.broadcast_all(&[0; 4]).unwrap();
        });
    });
    let ledger = clique.ledger();
    assert_eq!(ledger.total_rounds(), 12);
    assert_eq!(ledger.charged_rounds(), 10);
    assert_eq!(ledger.phase("").implemented, 1);
    assert_eq!(ledger.phase("x").charged, 10);
    assert_eq!(ledger.phase("x/y").implemented, 1);
    let kind = CostKind::Charged;
    assert_eq!(kind.to_string(), "charged");
}

/// Solver round counts are independent of the right-hand side (the
/// iteration count is fixed by κ and ε — a determinism requirement of the
/// synchronous model: every node must agree on the iteration count without
/// communication).
#[test]
fn solve_rounds_independent_of_rhs() {
    let g = generators::expander(32);
    let mut clique = Clique::new(32);
    let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
    let mut rounds = Vec::new();
    for seed in 0..3 {
        let mut b = vec![0.0; 32];
        b[seed] = 1.0;
        b[31 - seed] = -1.0;
        let before = clique.ledger().total_rounds();
        let _ = solver.solve(&mut clique, &b, 1e-7).unwrap();
        rounds.push(clique.ledger().total_rounds() - before);
    }
    assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
}
