//! End-to-end guarantees of the shared barrier-engine layer (DESIGN.md
//! §8): golden round totals and flow-bit hashes for fixed IPM instances,
//! cross-checked against the committed `BENCH_baseline.json`, plus a
//! property test that whole engine-driven IPM runs are bitwise
//! reproducible.

use cc_graph::generators;
use cc_maxflow::{max_flow_ipm, IpmOptions};
use cc_mcf::{min_cost_flow_ipm, McfOptions};
use cc_model::Clique;
use proptest::prelude::*;

/// FNV-1a over the flow values' two's-complement bits (same digest the
/// bench snapshot records).
fn hash_i64(xs: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in xs {
        h ^= x as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Golden {
    instance: &'static str,
    /// Max-flow value or min-cost-flow cost.
    objective: i64,
    total_rounds: u64,
    charged_rounds: u64,
    flow_hash: u64,
}

/// The four golden instances the bench snapshot embeds. These numbers
/// predate the barrier-engine refactor: the adapters must reproduce the
/// monolithic implementations bit for bit.
const GOLDENS: [Golden; 4] = [
    Golden {
        instance: "maxflow/random_flow_network_8_seed5",
        objective: 1,
        total_rounds: 1087,
        charged_rounds: 10,
        flow_hash: 0x2e1704081a58eccc,
    },
    Golden {
        instance: "maxflow/random_flow_network_12_seed13",
        objective: 6,
        total_rounds: 1905,
        charged_rounds: 18,
        flow_hash: 0xd305d83e13feb037,
    },
    Golden {
        instance: "mcf/bipartite_assignment_4_seed7",
        objective: 12,
        total_rounds: 304,
        charged_rounds: 4,
        flow_hash: 0x96f13d398a433d27,
    },
    Golden {
        instance: "mcf/bipartite_assignment_5_seed11",
        objective: 12,
        total_rounds: 1822,
        charged_rounds: 4,
        flow_hash: 0x6faf0117cc9bff8a,
    },
];

/// Runs one golden instance, returning (objective, total, charged, hash).
fn run_golden(instance: &str) -> (i64, u64, u64, u64) {
    match instance {
        "maxflow/random_flow_network_8_seed5" | "maxflow/random_flow_network_12_seed13" => {
            let (n, extra, cap, seed, s, t) = if instance.ends_with("8_seed5") {
                (8, 14, 3, 5, 0, 7)
            } else {
                (12, 26, 4, 13, 0, 11)
            };
            let g = generators::random_flow_network(n, extra, cap, seed);
            let mut clique = Clique::new(n);
            let out = max_flow_ipm(&mut clique, &g, s, t, &IpmOptions::default()).unwrap();
            (
                out.value,
                clique.ledger().total_rounds(),
                clique.ledger().charged_rounds(),
                hash_i64(&out.flow),
            )
        }
        _ => {
            let (k, extra, cost, seed) = if instance.ends_with("4_seed7") {
                (4, 2, 8, 7)
            } else {
                (5, 3, 6, 11)
            };
            let (g, sigma) = generators::bipartite_assignment(k, extra, cost, seed);
            let mut clique = Clique::new(g.n() + 2);
            let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default())
                .expect("feasible");
            (
                out.cost,
                clique.ledger().total_rounds(),
                clique.ledger().charged_rounds(),
                hash_i64(&out.flow),
            )
        }
    }
}

/// Value of `"key": value` on a single snapshot row (hand-rolled: the
/// repo has no JSON dependency, and the snapshot writes one row per
/// line).
fn field<'a>(row: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start = row
        .find(&pat)
        .unwrap_or_else(|| panic!("row missing {key}: {row}"))
        + pat.len();
    let rest = &row[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key}"));
    rest[..end].trim().trim_matches('"')
}

/// The engine-driven IPMs still cost exactly the golden round totals and
/// produce bit-identical flows, and the committed bench baseline agrees.
#[test]
fn golden_round_totals_match_code_and_baseline() {
    let baseline =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json"))
            .expect("BENCH_baseline.json is committed at the repo root");
    for golden in &GOLDENS {
        let (objective, total, charged, hash) = run_golden(golden.instance);
        assert_eq!(
            objective, golden.objective,
            "{}: objective",
            golden.instance
        );
        assert_eq!(
            total, golden.total_rounds,
            "{}: total rounds",
            golden.instance
        );
        assert_eq!(
            charged, golden.charged_rounds,
            "{}: charged rounds",
            golden.instance
        );
        assert_eq!(hash, golden.flow_hash, "{}: flow hash", golden.instance);

        let row = baseline
            .lines()
            .find(|l| l.contains(golden.instance))
            .unwrap_or_else(|| panic!("baseline has no row for {}", golden.instance));
        assert_eq!(
            field(row, "total_rounds"),
            golden.total_rounds.to_string(),
            "{}: baseline total_rounds",
            golden.instance
        );
        assert_eq!(
            field(row, "charged_rounds"),
            golden.charged_rounds.to_string(),
            "{}: baseline charged_rounds",
            golden.instance
        );
        assert_eq!(
            field(row, "flow_hash"),
            format!("{:#018x}", golden.flow_hash),
            "{}: baseline flow_hash",
            golden.instance
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two runs of an engine-driven IPM on the same instance are bitwise
    /// identical: same flow, same round totals, same per-stage engine
    /// stats. This is the determinism contract the sparsifier-template
    /// reuse and fixed-chunk fan-outs must not break.
    #[test]
    fn engine_driven_ipm_runs_are_bitwise_identical(
        n in 6usize..10,
        extra in 0usize..10,
        cap in 1i64..4,
        seed in 0u64..1000,
    ) {
        let g = generators::random_flow_network(n, extra, cap, seed);
        let run = || {
            let mut clique = Clique::new(n);
            let out = max_flow_ipm(&mut clique, &g, 0, n - 1, &IpmOptions::default()).unwrap();
            (out.flow.clone(), out.value, clique.ledger().total_rounds(), out.stats.clone())
        };
        let (flow_a, value_a, rounds_a, stats_a) = run();
        let (flow_b, value_b, rounds_b, stats_b) = run();
        prop_assert_eq!(flow_a, flow_b);
        prop_assert_eq!(value_a, value_b);
        prop_assert_eq!(rounds_a, rounds_b);
        prop_assert_eq!(stats_a.engine, stats_b.engine);
    }

    /// Same contract for the min-cost-flow adapter.
    #[test]
    fn engine_driven_mcf_runs_are_bitwise_identical(
        k in 3usize..6,
        extra in 0usize..4,
        cost in 1i64..8,
        seed in 0u64..1000,
    ) {
        let (g, sigma) = generators::bipartite_assignment(k, extra, cost, seed);
        let run = || {
            let mut clique = Clique::new(g.n() + 2);
            let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default())
                .expect("assignment instances are feasible");
            (out.flow.clone(), out.cost, clique.ledger().total_rounds(), out.stats.clone())
        };
        let (flow_a, cost_a, rounds_a, stats_a) = run();
        let (flow_b, cost_b, rounds_b, stats_b) = run();
        prop_assert_eq!(flow_a, flow_b);
        prop_assert_eq!(cost_a, cost_b);
        prop_assert_eq!(rounds_a, rounds_b);
        prop_assert_eq!(stats_a.engine, stats_b.engine);
    }
}
