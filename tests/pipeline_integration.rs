//! Cross-crate integration tests: the full Theorem 1.1–1.4 pipelines on
//! shared workloads, exercised through the public umbrella API.

use laplacian_clique::prelude::*;

/// Theorem 1.1 end-to-end: sparsifier built in the clique, Chebyshev
/// solve, accuracy certified against the exact solution — across graph
/// families and precisions.
#[test]
fn laplacian_solver_meets_epsilon_across_families() {
    let families: Vec<(&str, Graph)> = vec![
        ("expander", generators::expander(48)),
        ("grid", generators::grid(6, 8)),
        ("random", generators::random_connected(48, 144, 32, 9)),
        ("barbell", generators::barbell(24)),
        ("complete", generators::complete(32)),
    ];
    for (name, g) in families {
        let n = g.n();
        let mut clique = Clique::new(n);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut b = vec![0.0; n];
        b[0] = 2.0;
        b[n / 2] = -1.5;
        b[n - 1] = -0.5;
        for eps in [1e-3, 1e-7, 1e-10] {
            let out = solver.solve(&mut clique, &b, eps).unwrap();
            let err = out.relative_error().expect("reference kept");
            assert!(err <= eps * 1.05, "{name} eps={eps}: err={err}");
        }
    }
}

/// The sparsifier's certified α is honest (exact pencil check) and the
/// solver's round count per solve equals its Chebyshev iteration count.
#[test]
fn sparsifier_alpha_honest_and_rounds_equal_iterations() {
    let g = generators::random_connected(40, 160, 8, 4);
    let mut clique = Clique::new(40);
    let h = build_sparsifier(&mut clique, &g, &SparsifyParams::default()).unwrap();
    let bounds = verify_sparsifier(&g, &h).unwrap();
    assert!(bounds.alpha() <= h.alpha() * (1.0 + 1e-6));

    let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
    let mut b = vec![0.0; 40];
    b[3] = 1.0;
    b[29] = -1.0;
    let before = clique.ledger().total_rounds();
    let out = solver.solve(&mut clique, &b, 1e-9).unwrap();
    assert_eq!(
        clique.ledger().total_rounds() - before,
        out.iterations as u64
    );
}

/// Theorem 1.4 + Lemma 4.2 chained with Theorem 1.2's repair machinery:
/// a fractional flow is rounded and repaired to the exact optimum.
#[test]
fn rounding_plus_repair_reaches_exact_max_flow() {
    for seed in 0..4 {
        let g = generators::random_flow_network(14, 30, 4, seed);
        let (opt, want) = dinic(&g, 0, 13);
        // Fractional flow: 5/8 of the optimum (odd multiple of 1/8).
        let frac: Vec<f64> = opt.iter().map(|&f| f as f64 * 5.0 / 8.0).collect();
        let mut clique = Clique::new(14);
        let rounded = round_flow(
            &mut clique,
            &g,
            &frac,
            0,
            13,
            1.0 / 8.0,
            &FlowRoundingOptions::default(),
        )
        .unwrap();
        let mut flow = rounded.flow.clone();
        let value = g.flow_value(&flow, 0);
        assert!(g.is_feasible_flow(&flow, &g.st_demand(0, 13, value)));
        assert!(value as f64 >= want as f64 * 5.0 / 8.0 - 1e-9);
        let stats = laplacian_clique::maxflow::augment_to_optimality(
            &mut clique,
            &g,
            &mut flow,
            0,
            13,
            RoundModel::FastMatMul,
        )
        .unwrap();
        assert_eq!(g.flow_value(&flow, 0), want, "seed {seed}");
        assert_eq!(stats.added_value, want - value);
    }
}

/// Theorem 1.2 against Dinic across the workload families, with all three
/// deterministic algorithms agreeing.
#[test]
fn all_max_flow_algorithms_agree() {
    let cases = vec![
        generators::random_flow_network(12, 26, 6, 0),
        generators::random_flow_network(16, 40, 2, 1),
        generators::grid_flow_network(3, 4, 5, 2),
    ];
    for (i, g) in cases.into_iter().enumerate() {
        let n = g.n();
        let (_, want) = dinic(&g, 0, n - 1);
        let mut c1 = Clique::new(n);
        let ipm = max_flow_ipm(&mut c1, &g, 0, n - 1, &IpmOptions::default()).unwrap();
        let mut c2 = Clique::new(n);
        let ff = max_flow_ford_fulkerson(&mut c2, &g, 0, n - 1, RoundModel::Semiring).unwrap();
        let mut c3 = Clique::new(n);
        let tr = max_flow_trivial(&mut c3, &g, 0, n - 1).unwrap();
        assert_eq!(ipm.value, want, "case {i} ipm");
        assert_eq!(ff.value, want, "case {i} ff");
        assert_eq!(tr.value, want, "case {i} trivial");
    }
}

/// Theorem 1.3 against the SSP reference on assignment and random
/// unit-capacity workloads.
#[test]
fn min_cost_flow_matches_reference() {
    for seed in 0..3 {
        let (g, sigma) = generators::bipartite_assignment(5, 2, 12, seed);
        let (_, want) = ssp_min_cost_flow(&g, &sigma).unwrap();
        let mut clique = Clique::new(g.n() + 2);
        let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
        assert_eq!(out.cost, want, "assignment seed {seed}");
        assert!(g.is_feasible_flow(&out.flow, &sigma));
    }
    // Multi-unit point-to-point demand on a random unit digraph.
    let g = generators::random_unit_digraph(10, 30, 9, 7);
    let mut sigma = vec![0i64; 10];
    sigma[0] = 2;
    sigma[9] = -2;
    if let Some((_, want)) = ssp_min_cost_flow(&g, &sigma) {
        let mut clique = Clique::new(12);
        let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
        assert_eq!(out.cost, want);
    }
}

/// Full determinism across the stack: identical inputs yield bit-identical
/// outputs and round ledgers for every pipeline.
#[test]
fn whole_stack_determinism() {
    let g = generators::random_flow_network(12, 30, 4, 3);
    let run = || {
        let mut clique = Clique::new(12);
        let out = max_flow_ipm(&mut clique, &g, 0, 11, &IpmOptions::default()).unwrap();
        (
            out.flow,
            out.value,
            clique.ledger().total_rounds(),
            clique.ledger().phases().clone(),
        )
    };
    let (f1, v1, r1, p1) = run();
    let (f2, v2, r2, p2) = run();
    assert_eq!(f1, f2);
    assert_eq!(v1, v2);
    assert_eq!(r1, r2);
    assert_eq!(p1.len(), p2.len());

    let ug = generators::random_eulerian(20, 4, 8);
    let orient = || {
        let mut clique = Clique::new(20);
        eulerian_orientation(&mut clique, &ug).unwrap()
    };
    assert_eq!(orient(), orient());
}

/// The round ledger decomposes the max-flow pipeline into the phases the
/// paper's proof of Theorem 1.2 walks through.
#[test]
fn ledger_attributes_phases_of_theorem_1_2() {
    let g = generators::random_flow_network(12, 28, 4, 6);
    let mut clique = Clique::new(12);
    let _ = max_flow_ipm(&mut clique, &g, 0, 11, &IpmOptions::default()).unwrap();
    let ledger = clique.ledger();
    // Progress steps with Laplacian solves inside.
    assert!(ledger.phase_prefix_total("maxflow/maxflow_ipm") > 0);
    // Sparsifier constructions inside the solver.
    assert!(
        ledger
            .phases()
            .keys()
            .any(|k| k.contains("maxflow_ipm/sparsify")),
        "phases: {:?}",
        ledger.phases().keys().collect::<Vec<_>>()
    );
    // Total equals the sum over the top-level phase.
    assert_eq!(ledger.phase_prefix_total("maxflow"), ledger.total_rounds());
}
